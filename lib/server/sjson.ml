(** A minimal JSON value type with a parser and an emitter — the wire
    format of the [scenic serve] protocol and the reader behind
    [scenic bench diff].

    [scenic_telemetry.Tjson] is emission-only by design (telemetry sits
    at the bottom of the stack); the serving layer needs both
    directions, so the full round-trip lives here.  The parser is the
    strict subset of JSON the protocol and the bench records use: no
    surrogate pairs (non-ASCII [\u] escapes degrade to ['?']), numbers
    as OCaml floats.

    {!Raw} splices a pre-rendered JSON fragment into the output
    verbatim; the parser never produces it.  The serving protocol uses
    it to embed scene JSON exactly as [scenic sample --json] prints it,
    so a served batch can be byte-compared against the CLI without a
    re-encode round trip. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** emitted verbatim — must already be valid JSON; never parsed *)

exception Parse_error of string

(* --- parsing ------------------------------------------------------------- *)

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' ->
                  if !pos + 4 > n then fail "truncated \\u escape";
                  let hex = String.sub s !pos 4 in
                  pos := !pos + 4;
                  let code =
                    try int_of_string ("0x" ^ hex)
                    with _ -> fail "bad \\u escape"
                  in
                  (* ASCII round-trips; anything else degrades to '?'
                     (the protocol payloads are ASCII) *)
                  Buffer.add_char buf
                    (if code < 0x80 then Char.chr code else '?')
              | _ -> fail "bad escape");
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_num = function
  | Some (Num f) -> Some f
  | Some (Bool b) -> Some (if b then 1. else 0.)
  | _ -> None

let to_int j = Option.map int_of_float (to_num j)
let to_str = function Some (Str s) -> Some s | _ -> None
let to_list = function Some (List l) -> l | _ -> []

let to_bool = function
  | Some (Bool b) -> Some b
  | _ -> None

(* --- emission ------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(** Floats printed so they are always valid JSON numbers (same rules as
    [Tjson.float]: NaN becomes 0, infinities saturate). *)
let float_str f =
  if Float.is_nan f then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.6g" f
  else if f > 0. then "1e308"
  else "-1e308"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (float_str f)
  | Str s -> Buffer.add_string buf (escape s)
  | Raw s -> Buffer.add_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (escape k);
          Buffer.add_string buf ": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(** Convenience constructors. *)
let int i = Num (float_of_int i)
let str s = Str s
