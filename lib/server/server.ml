(** The [scenic serve] daemon: a threaded accept loop over the
    {!Protocol} framing, a bounded pending queue with fast-reject
    backpressure, and the content-addressed {!Cache} of compiled
    scenarios feeding the multicore batch sampler.

    {b Architecture.}  One acceptor systhread plus [workers] handler
    systhreads share a bounded queue of accepted connections.  The
    systhreads only do protocol work (framing, JSON, cache lookups) —
    the actual sampling parallelism stays on the persistent
    {!Scenic_sampler.Pool} of OCaml domains, which every handler
    multiplexes onto through {!Scenic_sampler.Parallel.run} with the
    server's [jobs] setting.  OCaml systhreads interleave rather than
    run in parallel, which is exactly right here: handler work is
    I/O-and-bookkeeping, and the domains do the heavy lifting.

    {b Determinism.}  A sample response embeds each scene's exact JSON
    text as produced by {!Scenic_render.Export.json_of_scene} on
    the batch drawn by [Parallel.run ~seed ~n] — the same code path as
    [scenic sample --json], with the same per-index RNG streams — so a
    served batch is byte-identical to the CLI's output for any [--jobs]
    value, and identical whether the compiled scenario came from the
    cache or a cold compile.

    {b Backpressure.}  The acceptor never blocks on handlers: when the
    pending queue is full the new connection gets one [overloaded]
    frame and is closed immediately (fast-reject — the client learns in
    one round trip instead of queueing blind).

    {b Deadlines.}  A request's [deadline_ms] maps to an absolute
    {!Scenic_sampler.Budget} deadline on the server's injectable clock,
    bounding the {e whole} batch (not per-scene); exhaustion comes back
    as a structured [exhausted] response — the wire form of the CLI's
    exit code 3.

    {b Shutdown.}  [shutdown] requests (or {!stop}) flip the draining
    flag: the acceptor closes the listening socket, queued connections
    are still served, in-flight requests complete and their connections
    are then closed, and {!await} returns once every thread has joined
    — no quarantined work is left behind in the domain pool. *)

module S = Scenic_sampler
module T = Scenic_telemetry

let src_log = Logs.Src.create "scenic.server" ~doc:"scene-generation server"

module Log = (val Logs.src_log src_log : Logs.LOG)

type config = {
  addr : Protocol.addr;
  workers : int;  (** handler threads (default 4) *)
  queue_cap : int;  (** pending connections before fast-reject (default 64) *)
  cache_cap : int;  (** compiled scenarios retained (default 128) *)
  jobs : int;  (** sampling domains per request batch (default 1) *)
  max_frame : int;  (** request frames above this are rejected *)
  max_scenes : int;  (** per-request [n] cap (default 100_000) *)
  clock : S.Budget.clock;  (** injectable: deadlines and latency spans *)
}

let default_config addr =
  {
    addr;
    workers = 4;
    queue_cap = 64;
    cache_cap = 128;
    jobs = 1;
    max_frame = Protocol.default_max_frame;
    max_scenes = 100_000;
    clock = S.Budget.default_clock;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound : Protocol.addr;  (** actual address (resolves TCP port 0) *)
  cache : Cache.t;
  metrics : T.Metrics.Locked.locked;
  pending : Unix.file_descr Queue.t;
  mx : Mutex.t;
  nonempty : Condition.t;
  mutable stopping : bool;
  mutable threads : Thread.t list;  (** acceptor + workers, set by [start] *)
  on_request : (unit -> unit) option;
      (** test hook: runs on the handler thread after it claims a
          connection, before the first frame is read — lets failure
          tests hold a worker busy deterministically *)
}

let bound_addr t = t.bound
let metrics t = t.metrics

(* --- lifecycle ----------------------------------------------------------- *)

let listen_socket (addr : Protocol.addr) =
  let fd = Unix.socket (Protocol.socket_domain addr) Unix.SOCK_STREAM 0 in
  (try
     (match addr with
     | Protocol.Unix_socket path ->
         (* a stale socket file from a dead server would make bind fail *)
         (try Unix.unlink path with Unix.Unix_error _ -> ())
     | Protocol.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
     Unix.bind fd (Protocol.sockaddr_of_addr addr);
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let resolve_bound fd (addr : Protocol.addr) =
  match addr with
  | Protocol.Unix_socket _ -> addr
  | Protocol.Tcp (host, _) -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Protocol.Tcp (host, port)
      | _ -> addr)

let create ?(config = fun c -> c) ?on_request addr =
  let config = config (default_config addr) in
  if config.workers < 1 then invalid_arg "Server: workers must be positive";
  if config.queue_cap < 1 then invalid_arg "Server: queue_cap must be positive";
  if config.jobs < 1 then invalid_arg "Server: jobs must be positive";
  let listen_fd = listen_socket config.addr in
  {
    config;
    listen_fd;
    bound = resolve_bound listen_fd config.addr;
    cache = Cache.create ~capacity:config.cache_cap;
    metrics = T.Metrics.Locked.create ();
    pending = Queue.create ();
    mx = Mutex.create ();
    nonempty = Condition.create ();
    stopping = false;
    threads = [];
    on_request = on_request;
  }

(** Flip the draining flag and wake everything: idle workers via the
    condition, and the acceptor via a throwaway self-connection —
    closing a socket does {e not} interrupt a thread already blocked in
    [accept] on Linux, so the wakeup has to arrive as a connection.
    Idempotent and thread-safe; in-flight and queued requests still
    complete. *)
let stop t =
  let first =
    Mutex.protect t.mx (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          Condition.broadcast t.nonempty;
          true
        end)
  in
  if first then begin
    Log.info (fun m -> m "draining");
    try
      let fd =
        Unix.socket (Protocol.socket_domain t.bound) Unix.SOCK_STREAM 0
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.connect fd (Protocol.sockaddr_of_addr t.bound))
    with Unix.Unix_error _ | Invalid_argument _ -> ()
  end

(* --- request handling ---------------------------------------------------- *)

let locked = T.Metrics.Locked.add

let publish_cache_stats t =
  let s = Cache.stats t.cache in
  T.Metrics.Locked.with_registry t.metrics (fun m ->
      T.Metrics.set_gauge m "compile.cache.hits" (float_of_int s.Cache.s_hits);
      T.Metrics.set_gauge m "compile.cache.misses"
        (float_of_int s.Cache.s_misses);
      T.Metrics.set_gauge m "compile.cache.evictions"
        (float_of_int s.Cache.s_evictions);
      T.Metrics.set_gauge m "compile.cache.size" (float_of_int s.Cache.s_size))

(* Resolve a sample request to a compiled handle: by source (computing
   the key, compiling on miss) or by hash (cache only — a miss is the
   client's cue to resend with source). *)
let resolve_compiled t (r : Protocol.sample_request) =
  match (r.Protocol.source, r.Protocol.hash) with
  | Some source, _ -> (
      let source = Cache.normalize source in
      let hash = Sha256.hex source in
      match Cache.find t.cache hash with
      | Some c -> Ok (hash, c, `Hit)
      | None -> (
          let t0 = t.config.clock () in
          match
            S.Compiled.of_source
              ~file:(Printf.sprintf "<serve:%s>" (String.sub hash 0 12))
              source
          with
          | compiled ->
              Cache.add t.cache hash compiled;
              T.Metrics.Locked.observe t.metrics "serve.compile_ms"
                ((t.config.clock () -. t0) *. 1000.);
              Ok (hash, compiled, `Miss)
          | exception Scenic_core.Errors.Scenic_error (kind, loc) ->
              Error
                ("compile error: " ^ Scenic_core.Errors.to_string (kind, loc))
          | exception Scenic_lang.Lexer.Error (msg, loc) ->
              Error (Fmt.str "lexical error: %s at %a" msg Scenic_lang.Loc.pp loc)
          | exception Scenic_lang.Parser.Error (msg, loc) ->
              Error (Fmt.str "syntax error: %s at %a" msg Scenic_lang.Loc.pp loc)
          ))
  | None, Some hash -> (
      match Cache.find t.cache hash with
      | Some c -> Ok (hash, c, `Hit)
      | None -> Error (Printf.sprintf "unknown hash %S: resend with source" hash)
      )
  | None, None -> Error "sample request needs \"source\" or \"hash\""

let handle_sample t (r : Protocol.sample_request) : Sjson.t =
  if r.Protocol.n > t.config.max_scenes then
    Protocol.error_response
      (Printf.sprintf "\"n\" exceeds the per-request cap of %d"
         t.config.max_scenes)
  else
    match resolve_compiled t r with
    | Error msg ->
        locked t.metrics "serve.errors" 1;
        Protocol.error_response msg
    | Ok (hash, compiled, hit) -> (
        (match hit with
        | `Hit -> locked t.metrics "serve.cache.hits" 1
        | `Miss -> locked t.metrics "serve.cache.misses" 1);
        publish_cache_stats t;
        (* [deadline_ms] bounds the whole batch via an absolute-deadline
           budget; an explicit iteration cap always rides along so a
           deadline-free infeasible request cannot spin forever. *)
        let budget =
          match (r.Protocol.deadline_ms, r.Protocol.max_iters) with
          | None, None -> None
          | deadline_ms, max_iters ->
              let deadline =
                Option.map
                  (fun ms -> t.config.clock () +. (ms /. 1000.))
                  deadline_ms
              in
              Some
                (S.Budget.create
                   ~max_iters:
                     (Option.value ~default:S.Rejection.default_max_iters
                        max_iters)
                   ?deadline ~clock:t.config.clock ())
        in
        let batch =
          S.Parallel.run ~jobs:t.config.jobs ?budget ~seed:r.Protocol.seed
            ~n:r.Protocol.n
            (S.Compiled.scenario compiled)
        in
        let base =
          [
            ("hash", Sjson.Str hash);
            ( "cache",
              Sjson.Str (match hit with `Hit -> "hit" | `Miss -> "miss") );
            ("seed", Sjson.int r.Protocol.seed);
            ("n", Sjson.int r.Protocol.n);
            ( "iterations",
              Sjson.int batch.S.Parallel.usage.S.Budget.total_iterations );
          ]
        in
        (* first failure in index order decides the response status, as
           the CLI's exit code does *)
        let first_failure =
          Array.to_seqi batch.S.Parallel.outcomes
          |> Seq.find_map (fun (i, o) ->
                 match o with
                 | S.Parallel.Scene _ -> None
                 | S.Parallel.Exhausted e ->
                     Some
                       (`Exhausted
                         (i, Fmt.str "%a" S.Budget.pp_stop_reason
                              e.S.Rejection.reason))
                 | S.Parallel.Faulted f ->
                     Some
                       (`Faulted
                         (i, Fmt.str "%a" Scenic_core.Errors.pp_fault
                              f.S.Parallel.f_fault)))
        in
        match first_failure with
        | None ->
            locked t.metrics "serve.scenes" r.Protocol.n;
            (* each scene travels as a JSON *string* holding the exact
               [Export.json_of_scene] text: string escape/unescape is a
               byte-exact round trip, so the client recovers the very
               bytes [scenic sample --json] would have printed — a Raw
               object splice would force clients to re-render floats *)
            let scenes =
              List.map
                (fun scene ->
                  Sjson.Str (Scenic_render.Export.json_of_scene scene))
                (S.Parallel.scenes batch)
            in
            Sjson.Obj
              ((("status", Sjson.Str "ok") :: base)
              @ [ ("scenes", Sjson.List scenes) ])
        | Some (`Exhausted (i, reason)) ->
            locked t.metrics "serve.exhausted" 1;
            Sjson.Obj
              ((("status", Sjson.Str "exhausted") :: base)
              @ [ ("index", Sjson.int i); ("reason", Sjson.Str reason) ])
        | Some (`Faulted (i, fault)) ->
            locked t.metrics "serve.errors" 1;
            Sjson.Obj
              ((("status", Sjson.Str "error") :: base)
              @ [
                  ("index", Sjson.int i);
                  ("error", Sjson.Str ("sample faulted: " ^ fault));
                ]))

let handle_request t (payload : string) : Sjson.t =
  let t0 = t.config.clock () in
  let response =
    match Protocol.parse_request payload with
    | Error msg ->
        locked t.metrics "serve.errors" 1;
        Protocol.error_response msg
    | Ok Protocol.Ping ->
        locked t.metrics "serve.ping.requests" 1;
        Sjson.Obj [ ("status", Sjson.Str "ok"); ("pong", Sjson.Bool true) ]
    | Ok Protocol.Stats ->
        locked t.metrics "serve.stats.requests" 1;
        publish_cache_stats t;
        let s = Cache.stats t.cache in
        Sjson.Obj
          [
            ("status", Sjson.Str "ok");
            ( "cache",
              Sjson.Obj
                [
                  ("hits", Sjson.int s.Cache.s_hits);
                  ("misses", Sjson.int s.Cache.s_misses);
                  ("evictions", Sjson.int s.Cache.s_evictions);
                  ("size", Sjson.int s.Cache.s_size);
                ] );
            ("stats", Sjson.Raw (T.Metrics.Locked.to_json t.metrics));
          ]
    | Ok Protocol.Shutdown ->
        locked t.metrics "serve.shutdown.requests" 1;
        stop t;
        Sjson.Obj [ ("status", Sjson.Str "ok"); ("draining", Sjson.Bool true) ]
    | Ok (Protocol.Sample r) ->
        locked t.metrics "serve.sample.requests" 1;
        handle_sample t r
  in
  T.Metrics.Locked.observe t.metrics "serve.request_ms"
    ((t.config.clock () -. t0) *. 1000.);
  locked t.metrics "serve.requests" 1;
  response

(* --- connection + thread loops ------------------------------------------- *)

let send_response fd (j : Sjson.t) =
  Protocol.write_frame fd (Sjson.to_string j)

(* Serve one connection to completion: sequential request/response
   until EOF, a protocol error (answered then closed), or drain. *)
let serve_connection t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let continue = ref true in
      while !continue do
        match Protocol.read_frame ~max_frame:t.config.max_frame fd with
        | None -> continue := false
        | Some payload ->
            send_response fd (handle_request t payload);
            (* draining: finish the in-flight exchange, then close the
               connection instead of waiting for more requests *)
            if t.stopping then continue := false
        | exception Protocol.Frame_too_large len ->
            locked t.metrics "serve.oversized" 1;
            send_response fd
              (Protocol.error_response
                 (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit"
                    len t.config.max_frame));
            continue := false
        | exception Protocol.Frame_error msg ->
            locked t.metrics "serve.malformed" 1;
            (* best-effort: the peer may already be gone *)
            (try
               send_response fd
                 (Protocol.error_response ("malformed frame: " ^ msg))
             with Unix.Unix_error _ | Sys_error _ -> ());
            continue := false
        | exception (Unix.Unix_error _ | Sys_error _) -> continue := false
      done)

let worker_loop t =
  let rec next () =
    let claim =
      Mutex.protect t.mx (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.pending) then
              Some (Queue.pop t.pending)
            else if t.stopping then None
            else begin
              Condition.wait t.nonempty t.mx;
              wait ()
            end
          in
          wait ())
    in
    match claim with
    | None -> ()
    | Some fd ->
        (match t.on_request with Some f -> f () | None -> ());
        (try serve_connection t fd
         with exn ->
           Log.err (fun m ->
               m "handler thread: uncaught %s" (Printexc.to_string exn)));
        next ()
  in
  next ()

(* The acceptor owns the listening socket: it is the only closer, once
   the drain flag (plus [stop]'s wakeup connection) gets it out of
   [accept]. *)
let accept_loop t =
  while not t.stopping do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Thread.yield ()
    | fd, _ ->
        let enqueued =
          Mutex.protect t.mx (fun () ->
              if t.stopping then `Draining
              else if Queue.length t.pending >= t.config.queue_cap then
                `Overloaded
              else begin
                Queue.push fd t.pending;
                Condition.signal t.nonempty;
                `Queued
              end)
        in
        (match enqueued with
        | `Queued -> ()
        | `Draining ->
            (* [stop]'s wakeup connection, or a client that raced the
               drain: no more work is admitted *)
            (try Unix.close fd with Unix.Unix_error _ -> ())
        | `Overloaded ->
            locked t.metrics "serve.overloaded" 1;
            (* fast-reject: one frame, then close — the client learns
               immediately instead of queueing blind *)
            (try send_response fd Protocol.overloaded_response
             with Unix.Unix_error _ | Sys_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ()))
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.config.addr with
  | Protocol.Unix_socket path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  | Protocol.Tcp _ -> ()

(** Spawn the acceptor and handler threads.  Returns immediately; use
    {!await} to block until shutdown completes. *)
let start t =
  if t.threads <> [] then invalid_arg "Server.start: already started";
  (* a peer that hangs up mid-response must cost one EPIPE, not the
     whole process: without this, the best-effort error reply to an
     already-closed connection would SIGPIPE the daemon *)
  (if Sys.os_type = "Unix" then
     try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ());
  let acceptor = Thread.create accept_loop t in
  let workers =
    List.init t.config.workers (fun _ -> Thread.create worker_loop t)
  in
  t.threads <- acceptor :: workers;
  Log.info (fun m ->
      m "listening on %a (%d workers, queue %d, cache %d, jobs %d)"
        Protocol.pp_addr t.bound t.config.workers t.config.queue_cap
        t.config.cache_cap t.config.jobs)

(** Block until the server has fully drained: every queued connection
    served, every thread joined. *)
let await t =
  List.iter Thread.join t.threads;
  t.threads <- [];
  publish_cache_stats t;
  Log.info (fun m -> m "drained: all handler threads joined")

let cache_stats t = Cache.stats t.cache
