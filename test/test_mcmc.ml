(** Tests for the MCMC sampler (the paper's suggested future work):
    the chain must agree with rejection sampling. *)

open Helpers
module C = Scenic_core
module G = Scenic_geometry
module P = Scenic_prob

let test_case = Alcotest.test_case

let mcmc_scenes ?(burn_in = 200) ?(thin = 15) ~seed ~n src =
  let scenario = compile src in
  let chain = Scenic_sampler.Mcmc.create ~burn_in ~thin ~seed scenario in
  (Scenic_sampler.Mcmc.sample_many chain n, chain)

let rejection_scenes ~seed ~n src =
  let scenario = compile src in
  let rng = P.Rng.create seed in
  let sampler = Scenic_sampler.Rejection.create ~rng scenario in
  Scenic_sampler.Rejection.sample_many sampler n

let tag_value s = C.Scene.prop_float (the_object s) "tag"

let suite =
  [
    test_case "samples satisfy hard requirements" `Quick (fun () ->
        let src =
          "import testLib\nego = Object at 0 @ 0\n\
           x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x > 7\n"
        in
        let scenes, chain = mcmc_scenes ~seed:3 ~n:40 src in
        List.iter
          (fun s -> Alcotest.(check bool) "req" true (tag_value s > 7.))
          scenes;
        Alcotest.(check bool) "accepts" true
          (Scenic_sampler.Mcmc.acceptance_rate chain > 0.05));
    test_case "conditional distribution matches rejection (KS)" `Slow
      (fun () ->
        (* x uniform (0,10) conditioned on x > 6: compare CDFs *)
        let src =
          "import testLib\nego = Object at 0 @ 0\n\
           x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x > 6\n"
        in
        let m1, _ = mcmc_scenes ~seed:3 ~n:400 src in
        let m2, _ = mcmc_scenes ~seed:4 ~n:400 src in
        let r = rejection_scenes ~seed:5 ~n:800 src in
        let xs l = List.map tag_value l in
        let d = P.Stats.ks_distance (xs (m1 @ m2)) (xs r) in
        if d > 0.08 then Alcotest.failf "KS distance %.3f too large" d);
    test_case "positions in a region match rejection (KS)" `Slow (fun () ->
        let src =
          "import testLib\nego = Object at -45 @ -45, with requireVisible \
           False\n\
           o = Object in stripe, with requireVisible False\n\
           require (distance from o to 5 @ 0) <= 20\n"
        in
        let m, _ = mcmc_scenes ~burn_in:300 ~thin:20 ~seed:7 ~n:500 src in
        let r = rejection_scenes ~seed:8 ~n:800 src in
        let ys l =
          List.map (fun s -> G.Vec.y (C.Scene.position (the_object s))) l
        in
        let d = P.Stats.ks_distance (ys m) (ys r) in
        if d > 0.09 then Alcotest.failf "KS distance %.3f too large" d);
    test_case "soft requirements hold at the right frequency" `Slow (fun () ->
        let src =
          "import testLib\nego = Object at 0 @ 0\n\
           x = (0, 1)\nObject at 5 @ 5, with tag x\nrequire[0.8] x > 0.5\n"
        in
        let scenes, _ = mcmc_scenes ~burn_in:300 ~thin:10 ~seed:9 ~n:700 src in
        let holds = P.Stats.frequency (fun s -> tag_value s > 0.5) scenes in
        (* target: 0.5 / (0.5 + 0.5·0.2) = 0.833 *)
        Alcotest.(check bool)
          (Printf.sprintf "frequency %.3f" holds)
          true
          (holds > 0.78 && holds < 0.89));
    test_case "infeasible scenarios raise Zero_probability" `Quick (fun () ->
        let src =
          "import testLib\nego = Object at 0 @ 0\nx = (0, 1)\n\
           Object at 5 @ 5\nrequire x > 2\n"
        in
        let scenario = compile src in
        match Scenic_sampler.Mcmc.create ~max_init_iters:50 ~seed:1 scenario with
        | exception C.Errors.Scenic_error (C.Errors.Zero_probability, _) -> ()
        | _ -> Alcotest.fail "expected Zero_probability");
    test_case "gallery scenario runs under MCMC" `Quick (fun () ->
        let scenes, _ =
          mcmc_scenes ~burn_in:50 ~thin:5 ~seed:11 ~n:5
            Scenic_harness.Scenarios.badly_parked
        in
        Alcotest.(check int) "5 scenes" 5 (List.length scenes));
  ]

(* --- Metropolis–Hastings invariants ---------------------------------------
   The proposal redraws one site from its prior, so the proposal is
   symmetric under the prior measure; the acceptance ratio then reduces
   to the requirement-weight ratio times the prior densities of the
   *other* sites.  These properties have sharp, testable consequences
   on fixed-parameter scenarios. *)

let property_suite =
  [
    test_case "flat target accepts every proposal (symmetry)" `Quick (fun () ->
        (* the only requirement is always true on the prior's support
           (it exists to make x a reachable site): the weight ratio is
           1 and the other-site density correction cancels exactly, so
           the MH ratio is identically 1 — any rejection would mean the
           proposal is not treated as symmetric *)
        let src =
          "import testLib\nego = Object at 0 @ 0\n\
           x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x >= 0\n"
        in
        let scenario = compile src in
        let chain =
          Scenic_sampler.Mcmc.create ~burn_in:0 ~thin:1 ~seed:21 scenario
        in
        ignore (Scenic_sampler.Mcmc.sample_many chain 300);
        check_float ~eps:0. "acceptance" 1.
          (Scenic_sampler.Mcmc.acceptance_rate chain));
    test_case "acceptance rate matches feasible prior mass (chi2)" `Quick
      (fun () ->
        (* single site x ~ U(0,10), require x > 7: each proposal is a
           fresh prior draw, accepted iff feasible, so acceptances are
           iid Bernoulli(0.3) regardless of the chain state *)
        let src =
          "import testLib\nego = Object at 0 @ 0\n\
           x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x > 7\n"
        in
        let scenario = compile src in
        let chain =
          Scenic_sampler.Mcmc.create ~burn_in:0 ~thin:1 ~seed:23 scenario
        in
        let n = 2000 in
        ignore (Scenic_sampler.Mcmc.sample_many chain n);
        let acc =
          int_of_float
            (Float.round
               (Scenic_sampler.Mcmc.acceptance_rate chain *. float_of_int n))
        in
        let t =
          P.Stats.chi2_test ~observed:[| acc; n - acc |]
            ~expected:[| 0.3; 0.7 |]
        in
        if t.p_value < 1e-3 then
          Alcotest.failf "acceptance %d/%d incompatible with 0.3 (p=%.2e)" acc
            n t.p_value);
    test_case "stationary marginal is uniform on the feasible set (chi2)"
      `Slow (fun () ->
        (* x ~ U(0,10) | x > 6 is U(6,10); bin the thinned chain *)
        let src =
          "import testLib\nego = Object at 0 @ 0\n\
           x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x > 6\n"
        in
        let scenes, _ = mcmc_scenes ~burn_in:100 ~thin:10 ~seed:25 ~n:600 src in
        let counts = Array.make 4 0 in
        List.iter
          (fun s ->
            let b = int_of_float ((tag_value s -. 6.) /. 1.) in
            let b = max 0 (min 3 b) in
            counts.(b) <- counts.(b) + 1)
          scenes;
        let t =
          P.Stats.chi2_test ~observed:counts ~expected:[| 1.; 1.; 1.; 1. |]
        in
        if t.p_value < 1e-3 then
          Alcotest.failf "marginal not uniform on (6,10): chi2=%.2f p=%.2e"
            t.statistic t.p_value);
  ]

let suites =
  [ ("sampler.mcmc", suite); ("sampler.mcmc-invariants", property_suite) ]
