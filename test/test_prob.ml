(** Tests for the probability substrate. *)

module P = Scenic_prob

let test_case = Alcotest.test_case

let rng_tests =
  [
    test_case "deterministic from seed" `Quick (fun () ->
        let a = P.Rng.create 42 and b = P.Rng.create 42 in
        for _ = 1 to 100 do
          Alcotest.(check (float 0.)) "same stream" (P.Rng.float a) (P.Rng.float b)
        done);
    test_case "different seeds differ" `Quick (fun () ->
        let a = P.Rng.create 1 and b = P.Rng.create 2 in
        let xs = List.init 20 (fun _ -> P.Rng.float a) in
        let ys = List.init 20 (fun _ -> P.Rng.float b) in
        Alcotest.(check bool) "diverge" true (xs <> ys));
    test_case "float in [0,1)" `Quick (fun () ->
        let rng = P.Rng.create 7 in
        for _ = 1 to 10_000 do
          let x = P.Rng.float rng in
          if x < 0. || x >= 1. then Alcotest.failf "out of range: %g" x
        done);
    test_case "float mean near 0.5" `Quick (fun () ->
        let rng = P.Rng.create 11 in
        let acc = P.Stats.Online.create () in
        for _ = 1 to 20_000 do
          P.Stats.Online.add acc (P.Rng.float rng)
        done;
        Alcotest.(check bool) "mean" true
          (Float.abs (P.Stats.Online.mean acc -. 0.5) < 0.01));
    test_case "int bounds and coverage" `Quick (fun () ->
        let rng = P.Rng.create 13 in
        let seen = Array.make 7 0 in
        for _ = 1 to 7000 do
          let k = P.Rng.int rng 7 in
          seen.(k) <- seen.(k) + 1
        done;
        Array.iteri
          (fun i c ->
            if c < 800 || c > 1200 then Alcotest.failf "bucket %d skewed: %d" i c)
          seen);
    test_case "int rejects bad bound" `Quick (fun () ->
        let rng = P.Rng.create 1 in
        Alcotest.check_raises "zero" (Invalid_argument "Rng.int: non-positive bound")
          (fun () -> ignore (P.Rng.int rng 0)));
    test_case "split produces independent streams" `Quick (fun () ->
        let parent = P.Rng.create 5 in
        let c1 = P.Rng.split parent and c2 = P.Rng.split parent in
        let xs = List.init 10 (fun _ -> P.Rng.float c1) in
        let ys = List.init 10 (fun _ -> P.Rng.float c2) in
        Alcotest.(check bool) "children differ" true (xs <> ys));
    test_case "copy preserves state" `Quick (fun () ->
        let a = P.Rng.create 9 in
        ignore (P.Rng.float a);
        let b = P.Rng.copy a in
        Alcotest.(check (float 0.)) "same next" (P.Rng.float a) (P.Rng.float b));
  ]

let stat_check name ~mean ~std dist =
  test_case name `Quick (fun () ->
      let rng = P.Rng.create 77 in
      let acc = P.Stats.Online.create () in
      for _ = 1 to 30_000 do
        P.Stats.Online.add acc (P.Distribution.sample dist rng)
      done;
      let m = P.Stats.Online.mean acc and s = P.Stats.Online.stddev acc in
      if Float.abs (m -. mean) > 0.05 *. Float.max 1. (Float.abs mean) then
        Alcotest.failf "mean: expected %g, got %g" mean m;
      if Float.abs (s -. std) > 0.05 *. Float.max 1. std then
        Alcotest.failf "std: expected %g, got %g" std s)

let distribution_tests =
  [
    stat_check "uniform(2,6) stats" ~mean:4. ~std:(4. /. sqrt 12.)
      (P.Distribution.uniform ~low:2. ~high:6.);
    stat_check "normal(3, 1.5) stats" ~mean:3. ~std:1.5
      (P.Distribution.normal ~mean:3. ~std:1.5);
    test_case "discrete respects weights" `Quick (fun () ->
        let d = P.Distribution.discrete [| 1.; 3. |] in
        let rng = P.Rng.create 3 in
        let ones = ref 0 in
        for _ = 1 to 10_000 do
          if P.Distribution.sample d rng = 1. then incr ones
        done;
        Alcotest.(check bool) "~75%" true (!ones > 7200 && !ones < 7800));
    test_case "discrete rejects invalid" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Distribution.discrete: negative weight") (fun () ->
            ignore (P.Distribution.discrete [| 1.; -1. |]));
        Alcotest.check_raises "empty"
          (Invalid_argument "Distribution.discrete: empty") (fun () ->
            ignore (P.Distribution.discrete [||])));
    test_case "truncated normal stays in range" `Quick (fun () ->
        let d = P.Distribution.truncated_normal ~mean:0. ~std:5. ~low:(-1.) ~high:1. in
        let rng = P.Rng.create 31 in
        for _ = 1 to 2000 do
          let x = P.Distribution.sample d rng in
          if x < -1. || x > 1. then Alcotest.failf "escaped: %g" x
        done);
    test_case "choice uniform over support" `Quick (fun () ->
        let d = P.Distribution.choice 3 in
        let rng = P.Rng.create 17 in
        let counts = Array.make 3 0 in
        for _ = 1 to 9000 do
          let k = int_of_float (P.Distribution.sample d rng) in
          counts.(k) <- counts.(k) + 1
        done;
        Array.iter (fun c -> Alcotest.(check bool) "balanced" true (c > 2600 && c < 3400)) counts);
  ]

let stats_tests =
  [
    test_case "mean/stddev of known list" `Quick (fun () ->
        let xs = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
        Alcotest.(check (float 1e-9)) "mean" 5. (P.Stats.mean xs);
        Alcotest.(check (float 1e-6)) "std" (sqrt (32. /. 7.)) (P.Stats.stddev xs));
    test_case "histogram bins and rows" `Quick (fun () ->
        let h = P.Stats.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
        List.iter (P.Stats.Histogram.add h) [ 0.1; 0.3; 0.3; 0.9; 1.5 (* clamps *) ];
        let counts = P.Stats.Histogram.counts h in
        Alcotest.(check (array int)) "counts" [| 1; 2; 0; 2 |] counts;
        Alcotest.(check int) "total" 5 (P.Stats.Histogram.total h));
    test_case "KS distance of identical samples is 0" `Quick (fun () ->
        let xs = [ 1.; 2.; 3.; 4. ] in
        Alcotest.(check (float 1e-9)) "zero" 0. (P.Stats.ks_distance xs xs));
    test_case "KS distance of disjoint samples is 1" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "one" 1.
          (P.Stats.ks_distance [ 1.; 2. ] [ 10.; 11. ]));
    test_case "KS of same distribution is small" `Quick (fun () ->
        let rng = P.Rng.create 5 in
        let draw () = List.init 2000 (fun _ -> P.Rng.float rng) in
        Alcotest.(check bool) "small" true (P.Stats.ks_distance (draw ()) (draw ()) < 0.06));
    test_case "ks_distance raises on empty, ks_distance_opt is total" `Quick
      (fun () ->
        (match P.Stats.ks_distance [] [ 1. ] with
        | exception Invalid_argument _ -> ()
        | d -> Alcotest.failf "expected Invalid_argument, got %g" d);
        (match P.Stats.ks_distance [ 1. ] [] with
        | exception Invalid_argument _ -> ()
        | d -> Alcotest.failf "expected Invalid_argument, got %g" d);
        Alcotest.(check bool)
          "opt empty" true
          (P.Stats.ks_distance_opt [] [ 1. ] = None
          && P.Stats.ks_distance_opt [ 1. ] [] = None);
        Alcotest.(check bool)
          "opt agrees" true
          (P.Stats.ks_distance_opt [ 1.; 2. ] [ 10. ]
          = Some (P.Stats.ks_distance [ 1.; 2. ] [ 10. ])));
    test_case "normal_cdf against tabulated values" `Quick (fun () ->
        Alcotest.(check (float 1e-7)) "0" 0.5 (P.Stats.normal_cdf 0.);
        Alcotest.(check (float 2e-4)) "1.96" 0.975 (P.Stats.normal_cdf 1.96);
        Alcotest.(check (float 2e-4)) "-1.96" 0.025 (P.Stats.normal_cdf (-1.96));
        Alcotest.(check (float 2e-3)) "z p-value" 0.05 (P.Stats.z_pvalue 1.96));
    test_case "chi2_sf against tabulated quantiles" `Quick (fun () ->
        (* classic 5% critical values *)
        Alcotest.(check (float 1e-3)) "df=1" 0.05 (P.Stats.chi2_sf ~df:1. 3.841);
        Alcotest.(check (float 1e-3)) "df=5" 0.05 (P.Stats.chi2_sf ~df:5. 11.070);
        Alcotest.(check (float 1e-3)) "df=10" 0.05 (P.Stats.chi2_sf ~df:10. 18.307);
        Alcotest.(check (float 1e-9)) "x=0" 1. (P.Stats.chi2_sf ~df:3. 0.));
    test_case "chi2_test: exact fit, scale invariance, gross misfit" `Quick
      (fun () ->
        let t = P.Stats.chi2_test ~observed:[| 10; 20; 30 |] ~expected:[| 1.; 2.; 3. |] in
        Alcotest.(check (float 1e-12)) "stat 0" 0. t.P.Stats.statistic;
        Alcotest.(check (float 1e-9)) "p 1" 1. t.P.Stats.p_value;
        (* expected counts are relative weights: scaling changes nothing *)
        let t2 =
          P.Stats.chi2_test ~observed:[| 48; 52 |] ~expected:[| 7.; 7. |]
        in
        let t3 =
          P.Stats.chi2_test ~observed:[| 48; 52 |] ~expected:[| 0.5; 0.5 |]
        in
        Alcotest.(check (float 1e-12)) "scale-free" t2.P.Stats.statistic
          t3.P.Stats.statistic;
        let bad =
          P.Stats.chi2_test ~observed:[| 100; 0 |] ~expected:[| 1.; 1. |]
        in
        Alcotest.(check bool) "gross misfit" true (bad.P.Stats.p_value < 1e-12));
    test_case "ks_test p-value behaviour at the extremes" `Quick (fun () ->
        let same = [ 1.; 2.; 3.; 4.; 5. ] in
        (match P.Stats.ks_test same same with
        | Some t -> Alcotest.(check (float 1e-6)) "identical" 1. t.P.Stats.p_value
        | None -> Alcotest.fail "unexpected None");
        (match P.Stats.ks_test [] same with
        | None -> ()
        | Some _ -> Alcotest.fail "expected None on empty");
        let a = List.init 200 float_of_int in
        let b = List.init 200 (fun i -> 1000. +. float_of_int i) in
        match P.Stats.ks_test a b with
        | Some t ->
            Alcotest.(check (float 1e-9)) "disjoint D" 1. t.P.Stats.statistic;
            Alcotest.(check bool) "tiny p" true (t.P.Stats.p_value < 1e-20)
        | None -> Alcotest.fail "unexpected None");
    test_case "chi2 p-values are calibrated under the null" `Slow (fun () ->
        (* 300 fair-coin experiments: the p-value should be roughly
           uniform, so P(p < 0.1) ~ 0.1 — a real tail, not a rank *)
        let rng = P.Rng.create 12 in
        let below = ref 0 in
        for _ = 1 to 300 do
          let heads = ref 0 in
          for _ = 1 to 400 do
            if P.Rng.float rng < 0.5 then incr heads
          done;
          let t =
            P.Stats.chi2_test
              ~observed:[| !heads; 400 - !heads |]
              ~expected:[| 1.; 1. |]
          in
          if t.P.Stats.p_value < 0.1 then incr below
        done;
        let frac = float_of_int !below /. 300. in
        Alcotest.(check bool)
          (Printf.sprintf "P(p<0.1)=%.3f" frac)
          true
          (frac > 0.03 && frac < 0.20));
    test_case "online matches batch" `Quick (fun () ->
        let xs = List.init 100 (fun i -> float_of_int i ** 1.3) in
        let acc = P.Stats.Online.create () in
        List.iter (P.Stats.Online.add acc) xs;
        Alcotest.(check (float 1e-6)) "mean" (P.Stats.mean xs) (P.Stats.Online.mean acc);
        Alcotest.(check (float 1e-6)) "std" (P.Stats.stddev xs) (P.Stats.Online.stddev acc));
  ]

let sampling_tests =
  [
    test_case "shuffle is a permutation" `Quick (fun () ->
        let rng = P.Rng.create 4 in
        let xs = List.init 50 Fun.id in
        let ys = P.Sampling.shuffle rng xs in
        Alcotest.(check (list int)) "same elements" xs (List.sort compare ys));
    test_case "choose k distinct" `Quick (fun () ->
        let rng = P.Rng.create 4 in
        let xs = List.init 100 Fun.id in
        let ys = P.Sampling.choose rng 30 xs in
        Alcotest.(check int) "size" 30 (List.length ys);
        Alcotest.(check int) "distinct" 30 (List.length (List.sort_uniq compare ys)));
    test_case "replace_fraction keeps size" `Quick (fun () ->
        let rng = P.Rng.create 4 in
        let base = List.init 100 (fun i -> i) in
        let pool = List.init 50 (fun i -> 1000 + i) in
        let mixed = P.Sampling.replace_fraction rng ~fraction:0.2 ~pool base in
        Alcotest.(check int) "size" 100 (List.length mixed);
        let injected = List.filter (fun x -> x >= 1000) mixed in
        Alcotest.(check int) "injected" 20 (List.length injected));
  ]

let suites =
  [
    ("prob.rng", rng_tests);
    ("prob.distribution", distribution_tests);
    ("prob.stats", stats_tests);
    ("prob.sampling", sampling_tests);
  ]
