(* In-process tests for the [scenic serve] stack: hashing, JSON,
   compiled-scenario cache, wire framing, request decoding, and
   end-to-end server behaviour — determinism against the library
   sampler, cache hit/miss byte-identity, failure paths (malformed,
   oversized, truncated, deadline-exhausted, overloaded) and graceful
   drain.  The CLI-level round trip (a real [scenic serve] process
   against [scenic client]) lives in test_cli.ml. *)

open Alcotest
module Srv = Scenic_server
module S = Scenic_sampler
module J = Srv.Sjson

let () = Scenic_worlds.Scenic_worlds_init.init ()

let feasible = "import mars\nego = Rover\nRock\n"
let feasible2 = "import gtaLib\nego = Car\nCar ahead of ego by (5, 10)\n"
let infeasible = "import mars\nego = Rover\nx = (0, 1)\nrequire x > 2\n"

(* --- sha256 -------------------------------------------------------------- *)

let sha256_tests =
  [
    test_case "NIST FIPS 180-4 vectors" `Quick (fun () ->
        let check_vec input expect =
          Alcotest.(check string) (String.sub expect 0 12) expect
            (Srv.Sha256.digest input)
        in
        check_vec ""
          "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
        check_vec "abc"
          "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
        (* two-block message *)
        check_vec "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
          "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
        (* one million 'a's: exercises many-block scheduling *)
        check_vec
          (String.make 1_000_000 'a')
          "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
    test_case "padding boundary lengths" `Quick (fun () ->
        (* lengths 55/56/64 straddle the padding block split; pin them
           so a padding regression cannot hide behind short inputs *)
        Alcotest.(check string) "55 bytes"
          "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318"
          (Srv.Sha256.digest (String.make 55 'a'));
        Alcotest.(check string) "56 bytes"
          "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
          (Srv.Sha256.digest (String.make 56 'a'));
        Alcotest.(check string) "64 bytes"
          "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
          (Srv.Sha256.digest (String.make 64 'a')));
  ]

(* --- sjson --------------------------------------------------------------- *)

let sjson_tests =
  [
    test_case "parse and access" `Quick (fun () ->
        let j =
          J.parse
            {|{"op": "sample", "n": 3, "neg": -2.5e1, "flag": true, "xs": [1, 2], "nul": null}|}
        in
        Alcotest.(check (option string)) "op" (Some "sample")
          (J.to_str (J.member "op" j));
        Alcotest.(check (option int)) "n" (Some 3) (J.to_int (J.member "n" j));
        Alcotest.(check (option (float 1e-9))) "neg" (Some (-25.))
          (J.to_num (J.member "neg" j));
        Alcotest.(check (option bool)) "flag" (Some true)
          (J.to_bool (J.member "flag" j));
        Alcotest.(check int) "xs" 2 (List.length (J.to_list (J.member "xs" j)));
        Alcotest.(check bool) "nul present" true (J.member "nul" j <> None);
        Alcotest.(check bool) "absent" true (J.member "zzz" j = None));
    test_case "string escaping round-trips all bytes" `Quick (fun () ->
        (* the byte-identity of served scenes rests on this: a scene
           travels as a JSON string, so escape→parse must be exact *)
        let all = String.init 256 Char.chr in
        let wire = J.to_string (J.Str all) in
        (match J.parse wire with
        | J.Str back ->
            Alcotest.(check string) "all 256 bytes survive" all back
        | _ -> Alcotest.fail "expected a string");
        let nested = "line1\nline2\t\"quoted\" \\slash\\ \x00\x1f" in
        match J.parse (J.to_string (J.Str nested)) with
        | J.Str back -> Alcotest.(check string) "controls survive" nested back
        | _ -> Alcotest.fail "expected a string");
    test_case "malformed input raises Parse_error" `Quick (fun () ->
        let bad s =
          match J.parse s with
          | exception J.Parse_error _ -> ()
          | _ -> Alcotest.fail (Printf.sprintf "parsed %S" s)
        in
        bad "";
        bad "{oops";
        bad "[1, 2";
        bad "\"unterminated";
        bad "{\"a\": }";
        bad "nul";
        bad "{} trailing");
    test_case "Raw splices verbatim" `Quick (fun () ->
        let j = J.Obj [ ("stats", J.Raw "{\"x\": 1}") ] in
        Alcotest.(check string) "verbatim" "{\"stats\": {\"x\": 1}}"
          (J.to_string j));
  ]

(* --- cache --------------------------------------------------------------- *)

let cache_tests =
  [
    test_case "key normalizes CRLF, distinguishes content" `Quick (fun () ->
        Alcotest.(check string) "CRLF = LF"
          (Srv.Cache.key "ego = Rover\nRock\n")
          (Srv.Cache.key "ego = Rover\r\nRock\r\n");
        Alcotest.(check bool) "different source, different key" true
          (Srv.Cache.key feasible <> Srv.Cache.key infeasible);
        Alcotest.(check int) "lowercase hex" 64
          (String.length (Srv.Cache.key feasible)))
    ;
    test_case "hit/miss counters and LRU eviction" `Quick (fun () ->
        let c = Srv.Cache.create ~capacity:2 in
        let compiled = S.Compiled.of_source feasible in
        let k s = Srv.Cache.key s in
        Alcotest.(check bool) "cold miss" true
          (Srv.Cache.find c (k "a") = None);
        Srv.Cache.add c (k "a") compiled;
        Srv.Cache.add c (k "b") compiled;
        Alcotest.(check bool) "a hits" true (Srv.Cache.find c (k "a") <> None);
        (* a was just touched, so adding c evicts b (the LRU entry) *)
        Srv.Cache.add c (k "c") compiled;
        Alcotest.(check bool) "b evicted" true
          (Srv.Cache.find c (k "b") = None);
        Alcotest.(check bool) "a survives" true
          (Srv.Cache.find c (k "a") <> None);
        Alcotest.(check bool) "c survives" true
          (Srv.Cache.find c (k "c") <> None);
        let s = Srv.Cache.stats c in
        Alcotest.(check int) "size" 2 s.Srv.Cache.s_size;
        Alcotest.(check int) "evictions" 1 s.Srv.Cache.s_evictions;
        Alcotest.(check int) "hits" 3 s.Srv.Cache.s_hits;
        Alcotest.(check int) "misses" 2 s.Srv.Cache.s_misses);
    test_case "capacity 0 disables retention" `Quick (fun () ->
        let c = Srv.Cache.create ~capacity:0 in
        let compiled = S.Compiled.of_source feasible in
        Srv.Cache.add c "k" compiled;
        Alcotest.(check bool) "never stored" true (Srv.Cache.find c "k" = None);
        Alcotest.(check int) "size 0" 0 (Srv.Cache.stats c).Srv.Cache.s_size);
  ]

(* --- framing ------------------------------------------------------------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let framing_tests =
  [
    test_case "round trip, then clean EOF" `Quick (fun () ->
        with_socketpair (fun a b ->
            Srv.Protocol.write_frame a "hello";
            Srv.Protocol.write_frame a "";
            (* empty payload is a zero length: must be rejected below *)
            Alcotest.(check (option string)) "payload" (Some "hello")
              (Srv.Protocol.read_frame b);
            (match Srv.Protocol.read_frame b with
            | exception Srv.Protocol.Frame_error _ -> ()
            | _ -> Alcotest.fail "zero-length frame accepted");
            Unix.close a;
            Alcotest.(check (option string)) "clean EOF" None
              (Srv.Protocol.read_frame b)));
    test_case "oversized frame raises Frame_too_large" `Quick (fun () ->
        with_socketpair (fun a b ->
            Srv.Protocol.write_frame a (String.make 100 'x');
            match Srv.Protocol.read_frame ~max_frame:64 b with
            | exception Srv.Protocol.Frame_too_large n ->
                Alcotest.(check int) "announced length" 100 n
            | _ -> Alcotest.fail "oversized frame accepted"));
    test_case "torn frame raises Frame_error" `Quick (fun () ->
        with_socketpair (fun a b ->
            (* header promises 100 bytes, deliver 10, hang up *)
            let hdr = Bytes.of_string "\x00\x00\x00\x64" in
            ignore (Unix.write a hdr 0 4);
            ignore (Unix.write_substring a "0123456789" 0 10);
            Unix.close a;
            match Srv.Protocol.read_frame b with
            | exception Srv.Protocol.Frame_error _ -> ()
            | _ -> Alcotest.fail "torn frame accepted");
        with_socketpair (fun a b ->
            (* EOF inside the header itself *)
            ignore (Unix.write_substring a "\x00\x00" 0 2);
            Unix.close a;
            match Srv.Protocol.read_frame b with
            | exception Srv.Protocol.Frame_error _ -> ()
            | _ -> Alcotest.fail "torn header accepted"));
  ]

(* --- request decoding ---------------------------------------------------- *)

let decode_err payload =
  match Srv.Protocol.parse_request payload with
  | Error e -> e
  | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" payload)

let protocol_tests =
  [
    test_case "addr_of_string" `Quick (fun () ->
        let open Srv.Protocol in
        Alcotest.(check bool) "path" true
          (addr_of_string "/tmp/s.sock" = Unix_socket "/tmp/s.sock");
        Alcotest.(check bool) "host:port" true
          (addr_of_string "127.0.0.1:9000" = Tcp ("127.0.0.1", 9000));
        Alcotest.(check bool) "bare :port defaults host" true
          (addr_of_string ":0" = Tcp ("127.0.0.1", 0));
        Alcotest.(check bool) "no colon is a path" true
          (addr_of_string "scenic.sock" = Unix_socket "scenic.sock"));
    test_case "sample request defaults and validation" `Quick (fun () ->
        (match
           Srv.Protocol.parse_request {|{"op": "sample", "source": "x"}|}
         with
        | Ok (Srv.Protocol.Sample r) ->
            Alcotest.(check int) "default seed" Srv.Protocol.default_seed
              r.Srv.Protocol.seed;
            Alcotest.(check int) "default n" 1 r.Srv.Protocol.n;
            Alcotest.(check bool) "no deadline" true
              (r.Srv.Protocol.deadline_ms = None)
        | _ -> Alcotest.fail "well-formed sample rejected");
        let contains needle hay =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "missing op" true
          (contains "op" (decode_err {|{"n": 1}|}));
        Alcotest.(check bool) "unknown op" true
          (contains "unknown op" (decode_err {|{"op": "launch"}|}));
        Alcotest.(check bool) "needs source or hash" true
          (contains "source" (decode_err {|{"op": "sample"}|}));
        Alcotest.(check bool) "negative n" true
          (contains "non-negative"
             (decode_err {|{"op": "sample", "source": "x", "n": -1}|}));
        Alcotest.(check bool) "bad deadline" true
          (contains "deadline_ms"
             (decode_err
                {|{"op": "sample", "source": "x", "deadline_ms": 0}|}));
        Alcotest.(check bool) "bad max_iters" true
          (contains "max_iters"
             (decode_err {|{"op": "sample", "source": "x", "max_iters": 0}|}));
        Alcotest.(check bool) "malformed JSON" true
          (contains "malformed" (decode_err "{nope")));
  ]

(* --- end-to-end ---------------------------------------------------------- *)

let fresh_sock name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "scenic-test-%d-%s.sock" (Unix.getpid ()) name)

let with_server ?(config = fun c -> c) ?on_request name f =
  let addr = Srv.Protocol.Unix_socket (fresh_sock name) in
  let server = Srv.Server.create ~config ?on_request addr in
  Srv.Server.start server;
  Fun.protect
    ~finally:(fun () ->
      Srv.Server.stop server;
      Srv.Server.await server)
    (fun () -> f server (Srv.Server.bound_addr server))

(* The byte-identity oracle: what `scenic sample --json --seed S -n N`
   renders, computed in-process through the same library path. *)
let expected_scenes ~source ~seed ~n ~jobs =
  let compiled = S.Compiled.of_source source in
  let batch = S.Parallel.run ~jobs ~seed ~n (S.Compiled.scenario compiled) in
  List.map Scenic_render.Export.json_of_scene (S.Parallel.scenes batch)

let must_sample ?source ?hash ?deadline_ms ?max_iters ~seed ~n addr =
  Srv.Client.with_connection addr (fun c ->
      match Srv.Client.sample ?source ?hash ?deadline_ms ?max_iters ~seed ~n c with
      | Some r -> r
      | None -> Alcotest.fail "server closed the connection")

let counter_value server name =
  Scenic_telemetry.Metrics.Locked.counter (Srv.Server.metrics server) name

let e2e_tests =
  [
    test_case "served batches are byte-identical across jobs" `Quick (fun () ->
        (* server samples with jobs=2 (multiplexing the domain pool);
           the oracle runs at jobs 1, 2 and 4 — all four must agree
           byte for byte, which is the PR's determinism contract *)
        with_server ~config:(fun c -> { c with Srv.Server.jobs = 2 })
          "determinism" (fun _server addr ->
            let seed = 9 and n = 6 in
            let oracle = expected_scenes ~source:feasible ~seed ~n ~jobs:1 in
            List.iter
              (fun jobs ->
                Alcotest.(check (list string))
                  (Printf.sprintf "oracle stable at jobs=%d" jobs)
                  oracle
                  (expected_scenes ~source:feasible ~seed ~n ~jobs))
              [ 2; 4 ];
            let cold = must_sample ~source:feasible ~seed ~n addr in
            Alcotest.(check string) "ok" "ok" cold.Srv.Client.status;
            Alcotest.(check (option string)) "first contact misses"
              (Some "miss") cold.Srv.Client.cache;
            Alcotest.(check (list string)) "cold bytes = CLI bytes" oracle
              cold.Srv.Client.scenes;
            let hit = must_sample ~source:feasible ~seed ~n addr in
            Alcotest.(check (option string)) "second contact hits"
              (Some "hit") hit.Srv.Client.cache;
            Alcotest.(check (list string)) "hit bytes = cold bytes" oracle
              hit.Srv.Client.scenes;
            (* resend by hash alone: same bytes without the source *)
            let h = Option.get cold.Srv.Client.hash in
            Alcotest.(check string) "hash is the cache key"
              (Srv.Cache.key feasible) h;
            let by_hash = must_sample ~hash:h ~seed ~n addr in
            Alcotest.(check (list string)) "hash-addressed bytes" oracle
              by_hash.Srv.Client.scenes));
    test_case "concurrent requests stay isolated" `Quick (fun () ->
        with_server
          ~config:(fun c -> { c with Srv.Server.workers = 3 })
          "concurrent" (fun _server addr ->
            let plans =
              [
                (feasible, 3, 4); (feasible2, 11, 3); (feasible, 7, 5);
              ]
            in
            let failures = Queue.create () in
            let fmx = Mutex.create () in
            let worker (source, seed, n) =
              let want = expected_scenes ~source ~seed ~n ~jobs:1 in
              let got = must_sample ~source ~seed ~n addr in
              if got.Srv.Client.scenes <> want then begin
                Mutex.lock fmx;
                Queue.add (seed, n) failures;
                Mutex.unlock fmx
              end
            in
            let threads =
              List.map (fun p -> Thread.create worker p) (plans @ plans)
            in
            List.iter Thread.join threads;
            Alcotest.(check int) "every interleaved batch matched" 0
              (Queue.length failures)));
    test_case "unknown hash and bad source answer error" `Quick (fun () ->
        with_server "errors" (fun _server addr ->
            let r =
              must_sample ~hash:(String.make 64 '0') ~seed:1 ~n:1 addr
            in
            Alcotest.(check string) "unknown hash" "error" r.Srv.Client.status;
            let r = must_sample ~source:"ego = = =\n" ~seed:1 ~n:1 addr in
            Alcotest.(check string) "compile failure" "error"
              r.Srv.Client.status;
            (* the connection survives an error response *)
            Srv.Client.with_connection addr (fun c ->
                Alcotest.(check bool) "still serving" true (Srv.Client.ping c))));
    test_case "deadline and iteration budgets answer exhausted" `Quick
      (fun () ->
        with_server "exhausted" (fun server addr ->
            let r =
              must_sample ~source:infeasible ~max_iters:50 ~seed:1 ~n:2 addr
            in
            Alcotest.(check string) "iteration cap" "exhausted"
              r.Srv.Client.status;
            (match r.Srv.Client.detail with
            | Some reason ->
                Alcotest.(check bool) "names the iteration limit" true
                  (let n = "iteration limit" in
                   let rec go i =
                     i + String.length n <= String.length reason
                     && (String.sub reason i (String.length n) = n || go (i + 1))
                   in
                   go 0)
            | None -> Alcotest.fail "exhausted response carries no reason");
            let r =
              must_sample ~source:infeasible ~deadline_ms:40. ~seed:1 ~n:1 addr
            in
            Alcotest.(check string) "wall-clock deadline" "exhausted"
              r.Srv.Client.status;
            Alcotest.(check bool) "exhaustions counted" true
              (counter_value server "serve.exhausted" >= 2)));
    test_case "malformed and oversized frames" `Quick (fun () ->
        with_server
          ~config:(fun c -> { c with Srv.Server.max_frame = 256 })
          "frames" (fun server addr ->
            (* valid frame, invalid JSON *)
            let c = Srv.Client.connect addr in
            (match Srv.Client.exchange_raw c "{not json" with
            | Some reply ->
                Alcotest.(check (option string)) "error status" (Some "error")
                  (Srv.Protocol.status_of_json (J.parse reply))
            | None -> Alcotest.fail "no response to malformed JSON");
            Srv.Client.close c;
            (* oversized: announced length above the server's cap gets a
               final error response, then the server closes *)
            let c = Srv.Client.connect addr in
            (match Srv.Client.exchange_raw c (String.make 1000 ' ') with
            | Some reply ->
                let j = J.parse reply in
                Alcotest.(check (option string)) "oversized rejected"
                  (Some "error")
                  (Srv.Protocol.status_of_json j);
                Alcotest.(check bool) "names the limit" true
                  (match J.to_str (J.member "error" j) with
                  | Some m ->
                      let rec has i =
                        i + 5 <= String.length m
                        && (String.sub m i 5 = "limit" || has (i + 1))
                      in
                      has 0
                  | None -> false)
            | None -> Alcotest.fail "no response to oversized frame");
            Srv.Client.close c;
            (* torn frame: promise 100 bytes, send 3, hang up — the
               server must log-and-close, not die *)
            let fd =
              Unix.socket
                (Srv.Protocol.socket_domain addr)
                Unix.SOCK_STREAM 0
            in
            Unix.connect fd (Srv.Protocol.sockaddr_of_addr addr);
            ignore (Unix.write_substring fd "\x00\x00\x00\x64abc" 0 7);
            Unix.close fd;
            (* the server is still alive and serving afterwards *)
            Srv.Client.with_connection addr (fun c ->
                Alcotest.(check bool) "alive after torn frame" true
                  (Srv.Client.ping c));
            Alcotest.(check bool) "malformed counted" true
              (counter_value server "serve.malformed" >= 1);
            Alcotest.(check bool) "oversized counted" true
              (counter_value server "serve.oversized" >= 1)));
    test_case "full queue answers overloaded" `Quick (fun () ->
        let gate = Mutex.create () in
        let cv = Condition.create () in
        let entered = ref 0 in
        let release = ref false in
        let hook () =
          Mutex.lock gate;
          incr entered;
          Condition.broadcast cv;
          while not !release do
            Condition.wait cv gate
          done;
          Mutex.unlock gate
        in
        with_server
          ~config:(fun c ->
            { c with Srv.Server.workers = 1; queue_cap = 1 })
          ~on_request:hook "overload" (fun server addr ->
            (* first connection: claimed by the only worker, which then
               blocks in the hook *)
            let held = Srv.Client.connect addr in
            Mutex.lock gate;
            while !entered < 1 do
              Condition.wait cv gate
            done;
            Mutex.unlock gate;
            (* with the worker held and queue_cap=1, of the next three
               connections one is queued and two must be fast-rejected
               with an immediate overloaded frame *)
            let extras = List.init 3 (fun _ -> Srv.Client.connect addr) in
            let deadline = Unix.gettimeofday () +. 5. in
            while
              counter_value server "serve.overloaded" < 2
              && Unix.gettimeofday () < deadline
            do
              Thread.yield ();
              ignore (Unix.select [] [] [] 0.01)
            done;
            Alcotest.(check bool) "two rejections counted" true
              (counter_value server "serve.overloaded" >= 2);
            (* rejected sockets have the overloaded frame waiting (then
               EOF); the queued one stays silent — select tells them
               apart without blocking *)
            let overloaded_replies =
              List.fold_left
                (fun acc c ->
                  let readable, _, _ =
                    Unix.select [ c.Srv.Client.fd ] [] [] 0.5
                  in
                  if readable = [] then acc
                  else
                    match Srv.Protocol.read_frame c.Srv.Client.fd with
                    | Some reply
                      when Srv.Protocol.status_of_json (J.parse reply)
                           = Some "overloaded" ->
                        acc + 1
                    | _ -> acc
                    | exception _ -> acc)
                0 extras
            in
            Alcotest.(check int) "overloaded frames delivered" 2
              overloaded_replies;
            Mutex.lock gate;
            release := true;
            Condition.broadcast cv;
            Mutex.unlock gate;
            Srv.Client.close held;
            List.iter Srv.Client.close extras;
            (* once the holder drains, the server serves normally *)
            Srv.Client.with_connection addr (fun c ->
                Alcotest.(check bool) "recovered after overload" true
                  (Srv.Client.ping c))));
    test_case "shutdown drains and leaves the pool healthy" `Quick (fun () ->
        let sock = fresh_sock "drain" in
        let addr = Srv.Protocol.Unix_socket sock in
        let server =
          Srv.Server.create
            ~config:(fun c -> { c with Srv.Server.jobs = 2 })
            addr
        in
        Srv.Server.start server;
        let r = must_sample ~source:feasible ~seed:3 ~n:4 addr in
        Alcotest.(check string) "served before shutdown" "ok"
          r.Srv.Client.status;
        Srv.Client.with_connection addr (fun c ->
            Alcotest.(check bool) "shutdown acknowledged" true
              (Srv.Client.shutdown c));
        Srv.Server.await server;
        Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock);
        (* the shared domain pool must still work after the server is
           gone: a drain that leaked pool workers would fail here *)
        let compiled = S.Compiled.of_source feasible in
        let batch =
          S.Parallel.run ~jobs:2 ~seed:3 ~n:4 (S.Compiled.scenario compiled)
        in
        Alcotest.(check int) "pool still samples" 4
          (List.length (S.Parallel.scenes batch));
        Alcotest.(check int) "no spawn failures" 0 (S.Pool.spawn_failures ()));
    test_case "n=0, scene cap, and stats op" `Quick (fun () ->
        with_server
          ~config:(fun c -> { c with Srv.Server.max_scenes = 8 })
          "edges" (fun _server addr ->
            let r = must_sample ~source:feasible ~seed:1 ~n:0 addr in
            Alcotest.(check string) "n=0 is ok" "ok" r.Srv.Client.status;
            Alcotest.(check int) "no scenes" 0
              (List.length r.Srv.Client.scenes);
            let r = must_sample ~source:feasible ~seed:1 ~n:9 addr in
            Alcotest.(check string) "above cap rejected" "error"
              r.Srv.Client.status;
            Srv.Client.with_connection addr (fun c ->
                match Srv.Client.stats c with
                | Some j ->
                    Alcotest.(check (option string)) "stats ok" (Some "ok")
                      (Srv.Protocol.status_of_json j);
                    Alcotest.(check bool) "cache stats present" true
                      (J.member "cache" j <> None)
                | None -> Alcotest.fail "no stats response")));
    test_case "TCP port 0 binds and serves" `Quick (fun () ->
        let server = Srv.Server.create (Srv.Protocol.Tcp ("127.0.0.1", 0)) in
        Srv.Server.start server;
        Fun.protect
          ~finally:(fun () ->
            Srv.Server.stop server;
            Srv.Server.await server)
          (fun () ->
            match Srv.Server.bound_addr server with
            | Srv.Protocol.Tcp (_, port) ->
                Alcotest.(check bool) "real port resolved" true (port > 0);
                Srv.Client.with_connection
                  (Srv.Server.bound_addr server)
                  (fun c ->
                    Alcotest.(check bool) "ping over TCP" true
                      (Srv.Client.ping c))
            | Srv.Protocol.Unix_socket _ ->
                Alcotest.fail "expected a TCP bound address"));
  ]

let suites =
  [
    ("server.sha256", sha256_tests);
    ("server.sjson", sjson_tests);
    ("server.cache", cache_tests);
    ("server.framing", framing_tests);
    ("server.protocol", protocol_tests);
    ("server.e2e", e2e_tests);
  ]
