(** Tests for the conformance subsystem itself: the Bonferroni
    judgement, the differential oracle's power (it must catch a
    deliberately broken pruner), and the fuzzer's determinism. *)

module C = Scenic_core
module G = Scenic_geometry
module P = Scenic_prob
module S = Scenic_sampler
module Conf = Scenic_conformance

let test_case = Alcotest.test_case

let stat_p name p =
  Conf.Check.stat ~name ~n:100
    { P.Stats.statistic = 1.; df = 1.; p_value = p }

let judge_tests =
  [
    test_case "Bonferroni threshold scales with the stat-check count" `Quick
      (fun () ->
        (* five stat checks at alpha 0.01: per-check threshold 0.002,
           so p = 0.004 survives even though it is below alpha *)
        let checks = List.init 5 (fun i -> stat_p (string_of_int i) 0.004) in
        let r = Conf.Check.judge ~alpha:0.01 ~elapsed_s:0. checks in
        Alcotest.(check (float 1e-12)) "threshold" 0.002 r.Conf.Check.threshold;
        Alcotest.(check bool) "ok" true (Conf.Check.ok r);
        let r2 =
          Conf.Check.judge ~alpha:0.01 ~elapsed_s:0.
            (stat_p "bad" 1e-5 :: checks)
        in
        Alcotest.(check int) "one failure" 1
          (List.length r2.Conf.Check.failures));
    test_case "flags fail regardless of alpha; skips never fail" `Quick
      (fun () ->
        let r =
          Conf.Check.judge ~alpha:0.01 ~elapsed_s:0.
            [
              Conf.Check.flag ~name:"broken" false;
              Conf.Check.flag ~name:"fine" true;
              Conf.Check.skip ~name:"later" "budget exhausted";
            ]
        in
        Alcotest.(check int) "failures" 1 (List.length r.Conf.Check.failures);
        Alcotest.(check int) "skipped" 1 r.Conf.Check.skipped;
        Alcotest.(check bool) "not ok" false (Conf.Check.ok r));
  ]

(* --- the oracle's power: a broken pruner must be caught ------------------ *)

let demo_src =
  Conf.World.header ^ "ego = Object at 0 @ 0" ^ Conf.World.neutral ^ "\n"
  ^ "o = Object in arena" ^ Conf.World.neutral ^ "\n"

let sample_scenes ~stream ~n scenario =
  S.Rejection.sample_many
    (S.Rejection.create ~rng:(P.Rng.create ~stream 0) scenario)
    n

let p_of name checks =
  match
    List.find_opt (fun c -> c.Conf.Check.name = name) checks
  with
  | Some { Conf.Check.kind = Conf.Check.Stat s; _ } -> s.p_value
  | Some _ -> Alcotest.failf "check %s is not statistical" name
  | None ->
      Alcotest.failf "no check named %s (have: %s)" name
        (String.concat ", " (List.map (fun c -> c.Conf.Check.name) checks))

let oracle_tests =
  [
    test_case "differential KS catches a pruner that drops a valid region"
      `Slow (fun () ->
        (* simulate an unsound pruning pass by rewriting o's uniform
           position region from the full arena to its right half — the
           kind of mass-dropping bug the convexity fix in
           Prune.containment_filter guards against.  The KS oracle on
           obj1.x must light up; a clean-vs-clean run must not. *)
        let clean = Conf.World.compile demo_src in
        let a = sample_scenes ~stream:1 ~n:300 clean in
        let b =
          sample_scenes ~stream:2 ~n:300 (Conf.World.compile demo_src)
        in
        let projections = S.Project.of_scenario clean in
        let clean_checks =
          Conf.Differential.ks_checks ~name:"clean" ~projections a b
        in
        List.iter
          (fun c ->
            match c.Conf.Check.kind with
            | Conf.Check.Stat s ->
                if s.p_value < 1e-4 then
                  Alcotest.failf "clean run flagged %s (p=%.2e)"
                    c.Conf.Check.name s.p_value
            | _ -> ())
          clean_checks;
        let broken = Conf.World.compile demo_src in
        let obj =
          List.find
            (fun (o : C.Value.obj) ->
              o.C.Value.oid <> broken.C.Scenario.ego.C.Value.oid)
            broken.C.Scenario.objects
        in
        (match S.Analyze.position_node obj with
        | None -> Alcotest.fail "expected a uniform position node"
        | Some (node, _) ->
            S.Analyze.rewrite_region node
              (G.Region.of_polygon
                 (G.Polygon.rectangle ~min_x:0. ~min_y:(-50.) ~max_x:50.
                    ~max_y:50.)));
        let bad = sample_scenes ~stream:3 ~n:300 broken in
        let broken_checks =
          Conf.Differential.ks_checks ~name:"broken" ~projections a bad
        in
        let p = p_of "broken/obj1.x" broken_checks in
        if p > 1e-9 then
          Alcotest.failf "broken pruner not caught: obj1.x p=%.2e" p);
  ]

(* --- fuzzer ---------------------------------------------------------------- *)

let fuzzer_tests =
  [
    test_case "program generation is a pure function of (seed, index)" `Quick
      (fun () ->
        let a = Conf.Fuzzer.source ~seed:0 ~index:7 in
        let b = Conf.Fuzzer.source ~seed:0 ~index:7 in
        Alcotest.(check string) "reproducible" a b;
        Alcotest.(check bool) "nonempty" true (String.length a > 0));
    test_case "replayed verdict is deterministic" `Quick (fun () ->
        Conf.World.ensure ();
        let v1 = Conf.Fuzzer.check ~seed:0 ~index:3 in
        let v2 = Conf.Fuzzer.check ~seed:0 ~index:3 in
        Alcotest.(check bool)
          "same verdict" true
          ((v1 = None) = (v2 = None)));
    test_case "30-program smoke finds no failures" `Slow (fun () ->
        Conf.World.ensure ();
        let s = Conf.Fuzzer.run ~seed:0 ~count:30 () in
        Alcotest.(check int) "all ran" 30 s.Conf.Fuzzer.total;
        match s.Conf.Fuzzer.failures with
        | [] -> ()
        | f :: _ -> Alcotest.failf "fuzzer failure:@.%a" Conf.Fuzzer.pp_failure f);
  ]

let suites =
  [
    ("conformance.judge", judge_tests);
    ("conformance.oracle", oracle_tests);
    ("conformance.fuzzer", fuzzer_tests);
  ]
