(** Property tests for {!Scenic_sampler.Diagnose.merge}: the algebra
    the parallel batch sampler relies on.  All counters are additive,
    so merging per-sample records must be associative, commutative in
    its counts, and have the empty record as identity — otherwise the
    merged diagnosis (and the [--diagnose] report built from it) would
    depend on worker scheduling.  Also pins the index-ordered
    tie-breaking of [least_satisfiable]. *)

open Helpers
module D = Scenic_sampler.Diagnose

let test_case = Alcotest.test_case

let qtest name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* One shared scenario: merge requires both records to diagnose the
   same requirement list.  Three user requirements plus the built-in
   defaults. *)
let scenario =
  compile
    "import testLib\n\
     ego = Object at 0 @ 0\n\
     x = (0, 1)\n\
     require x >= 0\n\
     require x <= 1\n\
     require x + x >= 0\n"

let nreq = List.length scenario.Scenic_core.Scenario.requirements

(* A diagnosis record as a value: an event list, each event one
   [record]/[record_accepted] call.  0 = accepted, 1..nreq = first
   failure of requirement (i - 1), above = a local rejection with one
   of three messages. *)
let apply d ev =
  if ev = 0 then D.record_accepted d
  else if ev <= nreq then D.record d (D.Requirement (ev - 1))
  else D.record d (D.Local (Printf.sprintf "empty region %d" (ev mod 3)))

let of_events evs =
  let d = D.create scenario in
  List.iter (apply d) evs;
  d

(* Everything observable about a record, as a comparable value. *)
let counters d =
  ( D.total d,
    D.accepted d,
    Array.to_list d.D.violations,
    D.local_rejections d )

let obs =
  Alcotest.testable
    (fun ppf (t, a, v, l) ->
      Fmt.pf ppf "total=%d accepted=%d violations=%a locals=%a" t a
        Fmt.(Dump.list int)
        v
        Fmt.(Dump.list (Dump.pair string int))
        l)
    ( = )

let events =
  QCheck.(list_of_size Gen.(0 -- 40) (int_bound (nreq + 5)))

let merge_property_tests =
  [
    qtest "merge is commutative" (QCheck.pair events events) (fun (a, b) ->
        counters (D.merge (of_events a) (of_events b))
        = counters (D.merge (of_events b) (of_events a)));
    qtest "merge is associative"
      (QCheck.triple events events events)
      (fun (a, b, c) ->
        let d x y = D.merge x y in
        counters (d (d (of_events a) (of_events b)) (of_events c))
        = counters (d (of_events a) (d (of_events b) (of_events c))));
    qtest "the empty record is a merge identity" events (fun evs ->
        let t = of_events evs in
        counters (D.merge (D.create scenario) t) = counters t
        && counters (D.merge t (D.create scenario)) = counters t);
    qtest "merge equals replaying the concatenated events"
      (QCheck.pair events events)
      (fun (a, b) ->
        counters (D.merge (of_events a) (of_events b))
        = counters (of_events (a @ b)));
    qtest "merge_into leaves the source untouched" events (fun evs ->
        let src = of_events evs in
        let before = counters src in
        D.merge_into ~into:(D.create scenario) src;
        counters src = before);
  ]

let merge_unit_tests =
  [
    test_case "merge sums every counter" `Quick (fun () ->
        let a = of_events [ 0; 1; 1; 2; nreq + 1 ]
        and b = of_events [ 0; 0; 1; nreq + 1; nreq + 2 ] in
        let m = D.merge a b in
        Alcotest.(check obs)
          "componentwise sums"
          ( D.total a + D.total b,
            D.accepted a + D.accepted b,
            List.map2 ( + )
              (Array.to_list a.D.violations)
              (Array.to_list b.D.violations),
            D.local_rejections (of_events [ 1; nreq + 1; nreq + 1; nreq + 2 ]) )
          (counters m))
      (* the local-rejection expectation is itself built by replay:
         messages (nreq+1) twice and (nreq+2) once, padded with a
         requirement event that does not touch the local table *);
    test_case "mismatched requirement sets are rejected" `Quick (fun () ->
        let other = compile "import testLib\nego = Object at 0 @ 0\n" in
        Alcotest.check_raises "invalid_arg"
          (Invalid_argument "Diagnose.merge_into: mismatched requirement sets")
          (fun () -> ignore (D.merge (D.create scenario) (D.create other))));
    test_case "least_satisfiable breaks count ties by lowest index" `Quick
      (fun () ->
        (* requirements 0 and 1 tie at two violations each *)
        let d = of_events [ 1; 2; 1; 2 ] in
        (match D.least_satisfiable d with
        | Some (0, _) -> ()
        | Some (i, _) -> Alcotest.failf "tie broke to index %d, not 0" i
        | None -> Alcotest.fail "no requirement reported");
        (* a strictly larger count still wins regardless of position *)
        let d2 = of_events [ 1; 2; 2; 1; 2 ] in
        match D.least_satisfiable d2 with
        | Some (1, _) -> ()
        | Some (i, _) -> Alcotest.failf "max count at index 1, got %d" i
        | None -> Alcotest.fail "no requirement reported");
    test_case "least_satisfiable is empty when nothing ever failed" `Quick
      (fun () ->
        Alcotest.(check bool)
          "accepted-only record" true
          (D.least_satisfiable (of_events [ 0; 0; 0 ]) = None));
  ]

let suites =
  [
    ("diagnose.merge-properties", merge_property_tests);
    ("diagnose.merge", merge_unit_tests);
  ]
