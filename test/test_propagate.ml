(** Tests for interval/box constraint propagation ({!Scenic_sampler
    .Propagate}): the interval arithmetic itself, static-infeasibility
    detection (with the error span pointing at the responsible
    [require]), distribution preservation of the full pass under the
    differential KS oracle, and the mars-bottleneck effectiveness pins
    that motivated the pass. *)

open Helpers
module C = Scenic_core
module G = Scenic_geometry
module P = Scenic_prob
module I = Scenic_sampler.Propagate.Interval

let test_case = Alcotest.test_case
let check_float = Alcotest.(check (float 1e-12))

(* --- interval arithmetic ------------------------------------------------- *)

let interval_tests =
  [
    test_case "make rejects inverted and NaN bounds" `Quick (fun () ->
        Alcotest.check_raises "inverted"
          (Invalid_argument "Interval.make: bad bounds (2, 1)") (fun () ->
            ignore (I.make 2. 1.));
        (try
           ignore (I.make Float.nan 1.);
           Alcotest.fail "nan accepted"
         with Invalid_argument _ -> ()));
    test_case "add/sub/neg are exact on endpoints" `Quick (fun () ->
        let a = I.make 1. 2. and b = I.make (-3.) 5. in
        let s = I.add a b in
        check_float "add.lo" (-2.) s.I.lo;
        check_float "add.hi" 7. s.I.hi;
        let d = I.sub a b in
        check_float "sub.lo" (-4.) d.I.lo;
        check_float "sub.hi" 5. d.I.hi;
        let n = I.neg a in
        check_float "neg.lo" (-2.) n.I.lo;
        check_float "neg.hi" (-1.) n.I.hi);
    test_case "abs folds sign-straddling intervals" `Quick (fun () ->
        let a = I.abs (I.make (-3.) 2.) in
        check_float "lo" 0. a.I.lo;
        check_float "hi" 3. a.I.hi;
        let b = I.abs (I.make (-5.) (-4.)) in
        check_float "neg lo" 4. b.I.lo;
        check_float "neg hi" 5. b.I.hi);
    test_case "mul takes the product hull" `Quick (fun () ->
        let p = I.mul (I.make (-2.) 3.) (I.make (-1.) 4.) in
        check_float "lo" (-8.) p.I.lo;
        check_float "hi" 12. p.I.hi);
    test_case "div declines zero-straddling divisors" `Quick (fun () ->
        (match I.div (I.make 1. 2.) (I.make (-1.) 1.) with
        | Some _ -> Alcotest.fail "division by a zero-straddling interval"
        | None -> ());
        match I.div (I.make 1. 2.) (I.make 2. 4.) with
        | None -> Alcotest.fail "sound division declined"
        | Some q ->
            check_float "lo" 0.25 q.I.lo;
            check_float "hi" 1. q.I.hi);
    test_case "hull and contains agree" `Quick (fun () ->
        let h = I.hull (I.make 0. 1.) (I.make 3. 4.) in
        Alcotest.(check bool) "inside gap" true (I.contains h 2.);
        check_float "width" 4. (I.width h));
    test_case "infinite-bound arithmetic degrades to top, not NaN" `Quick
      (fun () ->
        (* 0·∞, ∞−∞ and ∞/∞ are NaN; the transfer functions must
           widen to the unbounded interval instead of producing NaN
           bounds that a later [make] rejects *)
        Alcotest.(check bool) "0 * top" true (I.mul (I.point 0.) I.top = I.top);
        Alcotest.(check bool) "inf + -inf" true
          (I.add (I.point infinity) (I.point neg_infinity) = I.top);
        Alcotest.(check bool) "scale 0 over an infinite interval" true
          (I.scale 0. (I.make 0. infinity) = I.top);
        Alcotest.(check bool) "inf / inf" true
          (I.div I.top (I.make 1. infinity) = Some I.top));
    test_case "empty intersection raises Zero_probability at the span" `Quick
      (fun () ->
        let loc =
          {
            Scenic_lang.Loc.file = "t.scenic";
            start = { line = 7; col = 0 };
            stop = { line = 7; col = 10 };
          }
        in
        try
          ignore (I.intersect ~loc (I.make 0. 1.) (I.make 2. 3.));
          Alcotest.fail "empty intersection accepted"
        with C.Errors.Scenic_error (C.Errors.Zero_probability, span) ->
          Alcotest.(check string) "file" "t.scenic" span.Scenic_lang.Loc.file;
          Alcotest.(check int) "line" 7 span.Scenic_lang.Loc.start.line);
  ]

(* --- static elimination -------------------------------------------------- *)

let static_tests =
  [
    test_case "statically infeasible require raises at its source line" `Quick
      (fun () ->
        (* x = (0, 1) on line 3 of the program; the contradiction is the
           require on line 4, and the error must say so *)
        let src =
          "import testLib\nego = Object at 0 @ 0\nx = (0, 1)\nrequire x > 2\n"
        in
        let scenario = compile src in
        try
          ignore (Scenic_sampler.Propagate.run scenario);
          Alcotest.fail "infeasible scenario propagated"
        with C.Errors.Scenic_error (C.Errors.Zero_probability, span) ->
          Alcotest.(check int) "require line" 4 span.Scenic_lang.Loc.start.line);
    test_case "statically true requires are eliminated from the loop" `Quick
      (fun () ->
        let src =
          "import testLib\nego = Object at 0 @ 0\nx = (0, 1)\nrequire x >= 0\n"
        in
        let scenario = compile src in
        let stats = Scenic_sampler.Propagate.run scenario in
        Alcotest.(check bool) "static_true" true
          (stats.Scenic_sampler.Propagate.static_true >= 1);
        Alcotest.(check bool) "recorded on the scenario" true
          (scenario.C.Scenario.static_true <> []));
    test_case "the sampler falls back to the unpropagated scenario" `Quick
      (fun () ->
        (* Sampler.create must not raise on static infeasibility: it
           restores the snapshot and lets the budget exhaust with a
           diagnosis (the supervised degradation ladder) *)
        let src =
          "import testLib\nego = Object at 0 @ 0\nx = (0, 1)\nrequire x > 2\n"
        in
        let sampler =
          Scenic_sampler.Sampler.create ~max_iters:50 ~seed:3 (compile src)
        in
        match Scenic_sampler.Sampler.sample_outcome sampler with
        | Scenic_sampler.Rejection.Sampled _ ->
            Alcotest.fail "sampled an infeasible scenario"
        | Scenic_sampler.Rejection.Exhausted _ -> ());
  ]

(* --- separable stratification -------------------------------------------- *)

let separable_tests =
  [
    test_case "side-disjoint conjunction keeps both sides' feasible regions"
      `Quick (fun () ->
        (* `require (a > 0.3) and (b > 0.6)` is separable: the two
           sub-predicates read disjoint scalars.  The band search pins
           the frontier nodes with direct overrides the cross-cell memo
           cannot key on; a stale cached sub-verdict once replayed the
           first hull's definite-false for every later hull, dropping
           the whole feasible region and raising a spurious
           Zero_probability here. *)
        let src =
          "import testLib\nego = Object at 0 @ 0\na = (0, 1)\nb = (0, 1)\n\
           require (a > 0.3) and (b > 0.6)\n"
        in
        let scenario = compile src in
        let stats = Scenic_sampler.Propagate.run scenario in
        Alcotest.(check bool) "strata built" true
          (stats.Scenic_sampler.Propagate.strata > 0);
        let rf = stats.Scenic_sampler.Propagate.retained_frac in
        Alcotest.(check bool)
          (Printf.sprintf "retained covers 0.7 x 0.4 tightly (got %.4f)" rf)
          true
          (rf >= 0.28 -. 1e-9 && rf <= 0.30));
  ]

(* --- distribution preservation (differential KS) ------------------------- *)

(* The conformance suite runs the full-size oracle on every gallery
   scenario ([scenic conformance]); here a faster pass pins the same
   property in the unit suite, via the same Differential arms. *)
let ks_preservation_tests =
  let check_scenario name src =
    test_case (name ^ ": propagated ≡ plain under KS") `Slow (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        Scenic_conformance.World.ensure ();
        let checks =
          Scenic_conformance.Differential.prune_vs_plain ~seed:11 ~n:200 ~name
            src
        in
        Alcotest.(check bool) "some projections compared" true (checks <> []);
        let report =
          Scenic_conformance.Check.judge ~alpha:0.01 ~elapsed_s:0. checks
        in
        if not (Scenic_conformance.Check.ok report) then
          Alcotest.failf "%d projection(s) shifted: %s"
            (List.length report.Scenic_conformance.Check.failures)
            (String.concat ", "
               (List.map
                  (fun (c : Scenic_conformance.Check.t) ->
                    c.Scenic_conformance.Check.name)
                  report.Scenic_conformance.Check.failures)))
  in
  [
    check_scenario "simplest" Scenic_harness.Scenarios.simplest;
    check_scenario "oncoming" Scenic_harness.Scenarios.oncoming;
    check_scenario "bumper-to-bumper" Scenic_harness.Scenarios.bumper_to_bumper;
    check_scenario "mars-bottleneck" Scenic_harness.Scenarios.mars_bottleneck;
    check_scenario "oncoming-anywhere" Scenic_harness.Scenarios.oncoming_anywhere;
  ]

(* --- effectiveness pins (the rejection-tail bugfix) ---------------------- *)

let effectiveness_tests =
  [
    test_case "mars-bottleneck: stratification collapses the rejection tail"
      `Slow (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let n = 100 in
        let iters propagate =
          let sampler =
            Scenic_sampler.Sampler.of_source ~propagate ~seed:5 ~file:"mars"
              Scenic_harness.Scenarios.mars_bottleneck
          in
          for _ = 1 to n do
            ignore (Scenic_sampler.Sampler.sample sampler)
          done;
          ( float_of_int (Scenic_sampler.Sampler.total_iterations sampler)
            /. float_of_int n,
            Scenic_sampler.Sampler.propagate_stats sampler )
        in
        let plain_iters, _ = iters false in
        let prop_iters, stats = iters true in
        (match stats with
        | None -> Alcotest.fail "propagation did not run"
        | Some s ->
            Alcotest.(check bool) "strata built" true
              (s.Scenic_sampler.Propagate.strata > 0);
            Alcotest.(check bool) "domain shrunk" true
              (s.Scenic_sampler.Propagate.retained_frac < 0.5));
        (* the paper scenario needs ~230 iterations/scene unpropagated
           and ~30 with the stratified driver: pin a 3x improvement so
           regressions in the propagation pass fail loudly, without
           flaking on seed noise *)
        Alcotest.(check bool)
          (Printf.sprintf "mean iterations improved (%.1f -> %.1f)" plain_iters
             prop_iters)
          true
          (prop_iters *. 3. < plain_iters));
    test_case "stats carry the explain-facing warmup and build ledger" `Quick
      (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let scenario =
          C.Eval.compile ~file:"mars" Scenic_harness.Scenarios.mars_bottleneck
        in
        let s = Scenic_sampler.Propagate.run scenario in
        let module Pr = Scenic_sampler.Propagate in
        Alcotest.(check bool) "warmup drew something" true (s.Pr.warmup_draws > 0);
        Alcotest.(check int) "one violation slot per requirement"
          (List.length scenario.C.Scenario.requirements)
          (Array.length s.Pr.warmup_violations);
        Alcotest.(check bool) "some warmup failure attributed" true
          (Array.exists (fun n -> n > 0) s.Pr.warmup_violations);
        (* the strata rewrite re-warms, so the post-rewrite profile exists
           and acceptance did not get worse *)
        (match (s.Pr.post_acceptance, s.Pr.post_draws, s.Pr.post_violations) with
        | Some a, Some d, Some v ->
            Alcotest.(check bool) "post draws" true (d > 0);
            Alcotest.(check int) "post violation slots"
              (List.length scenario.C.Scenario.requirements)
              (Array.length v);
            Alcotest.(check bool) "acceptance not worse" true
              (a >= s.Pr.warmup_acceptance)
        | _ -> Alcotest.fail "strata rewrite should re-warm on mars-bottleneck");
        Alcotest.(check bool) "band build cost counted" true
          (s.Pr.build_evals > 0);
        Alcotest.(check bool) "separable path taken" true s.Pr.separable;
        Alcotest.(check bool) "final check order recorded" true
          (Array.length s.Pr.check_order > 0);
        (* the order is a permutation of the non-static requirements *)
        let sorted = Array.copy s.Pr.check_order in
        Array.sort compare sorted;
        Alcotest.(check bool) "no duplicate check slots" true
          (Array.for_all Fun.id
             (Array.mapi
                (fun i v -> i = 0 || sorted.(i - 1) < v)
                sorted)));
    test_case "warmup profile reaches the probe as warmup.* keys" `Quick
      (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let m = Scenic_telemetry.Metrics.create () in
        let probe = Scenic_telemetry.Probe.make ~metrics:m () in
        let sampler =
          Scenic_sampler.Sampler.of_source ~probe ~seed:5 ~file:"mars"
            Scenic_harness.Scenarios.mars_bottleneck
        in
        ignore (Scenic_sampler.Sampler.sample sampler);
        let module M = Scenic_telemetry.Metrics in
        Alcotest.(check bool) "warmup.acceptance gauge" true
          (M.gauge m "warmup.acceptance" <> None);
        Alcotest.(check bool) "warmup.iterations counter" true
          (M.counter m "warmup.iterations" > 0);
        Alcotest.(check bool) "post-rewrite acceptance gauge" true
          (M.gauge m "warmup.post_acceptance" <> None);
        (* per-requirement attribution mirrors the rejection.* convention *)
        let hit = ref false in
        Hashtbl.iter
          (fun k (_ : int ref) ->
            if String.length k > 19 && String.sub k 0 19 = "warmup.requirement." then
              hit := true)
          m.M.counters;
        Alcotest.(check bool) "warmup.requirement.* counters" true !hit);
    test_case "propagation is deterministic for a scenario" `Quick (fun () ->
        let stats () =
          let scenario =
            C.Eval.compile ~file:"mars"
              Scenic_harness.Scenarios.mars_bottleneck
          in
          Scenic_sampler.Propagate.run scenario
        in
        let s1 = stats () and s2 = stats () in
        Alcotest.(check bool) "equal stats" true (s1 = s2));
  ]

let suites =
  [
    ("propagate.interval", interval_tests);
    ("propagate.static", static_tests);
    ("propagate.separable", separable_tests);
    ("propagate.ks", ks_preservation_tests);
    ("propagate.effectiveness", effectiveness_tests);
  ]
