(** Tests for the persistent domain pool ({!Scenic_sampler.Pool}):
    complete per-index failure reporting in deterministic order,
    idempotent shutdown (including after a faulted batch), and the
    inline-serving degradation path that keeps batches finishing even
    with zero workers. *)

module S = Scenic_sampler

let test_case = Alcotest.test_case

(* run a body over [n] indices and return (per-index hit counts,
   failures) *)
let run_counted ?chunk ~helpers ~n body =
  let hits = Array.make n 0 in
  let mx = Mutex.create () in
  let failures =
    S.Pool.run ?chunk ~helpers ~n (fun i ->
        Mutex.lock mx;
        hits.(i) <- hits.(i) + 1;
        Mutex.unlock mx;
        body i)
  in
  (hits, failures)

let failure_tests =
  [
    test_case "a clean batch reports no failures" `Quick (fun () ->
        let hits, failures = run_counted ~helpers:3 ~n:32 (fun _ -> ()) in
        Alcotest.(check (list int)) "no failures" []
          (List.map fst failures);
        Alcotest.(check bool) "every index ran exactly once" true
          (Array.for_all (( = ) 1) hits));
    test_case "all failures are recorded, not just the first" `Quick (fun () ->
        (* regression: the pre-PR-6 pool kept one racy 'first' exception
           and discarded the rest.  Two faulting indices served by
           different workers must both surface. *)
        let _, failures =
          run_counted ~helpers:2 ~chunk:1 ~n:12 (fun i ->
              if i = 2 then failwith "fault-two";
              if i = 9 then failwith "fault-nine")
        in
        Alcotest.(check (list int)) "both indices, ascending" [ 2; 9 ]
          (List.map fst failures);
        let msgs =
          List.map
            (function
              | _, Failure m -> m
              | _, exn -> Printexc.to_string exn)
            failures
        in
        Alcotest.(check (list string))
          "each index keeps its own exception" [ "fault-two"; "fault-nine" ]
          msgs);
    test_case "failure order is index order at any worker count" `Quick
      (fun () ->
        let faulty = [ 1; 4; 7; 10; 13 ] in
        List.iter
          (fun helpers ->
            let _, failures =
              run_counted ~helpers ~chunk:1 ~n:16 (fun i ->
                  if List.mem i faulty then failwith "boom")
            in
            Alcotest.(check (list int))
              (Printf.sprintf "helpers %d" helpers)
              faulty
              (List.map fst failures))
          [ 0; 1; 3 ]);
    test_case "faulted indices never poison siblings" `Quick (fun () ->
        let hits, failures =
          run_counted ~helpers:3 ~n:20 (fun i ->
              if i mod 2 = 0 then failwith "even")
        in
        Alcotest.(check int) "ten failures" 10 (List.length failures);
        Alcotest.(check bool) "every index still ran exactly once" true
          (Array.for_all (( = ) 1) hits));
    test_case "helpers 0 serves inline without touching the pool" `Quick
      (fun () ->
        let before = S.Pool.size () in
        let hits, failures = run_counted ~helpers:0 ~n:8 (fun _ -> ()) in
        Alcotest.(check int) "pool size unchanged" before (S.Pool.size ());
        Alcotest.(check bool) "all served" true (Array.for_all (( = ) 1) hits);
        Alcotest.(check (list int)) "no failures" [] (List.map fst failures));
  ]

let shutdown_tests =
  [
    test_case "shutdown after a faulted batch neither hangs nor leaks" `Quick
      (fun () ->
        let _, failures =
          run_counted ~helpers:2 ~n:8 (fun i ->
              if i = 3 then failwith "pre-shutdown fault")
        in
        Alcotest.(check (list int)) "fault recorded" [ 3 ]
          (List.map fst failures);
        S.Pool.shutdown ();
        Alcotest.(check int) "no workers left" 0 (S.Pool.size ()));
    test_case "shutdown is idempotent" `Quick (fun () ->
        (* double-shutdown must not double-join or hang *)
        ignore (S.Pool.run ~helpers:2 ~n:4 (fun _ -> ()));
        S.Pool.shutdown ();
        S.Pool.shutdown ();
        Alcotest.(check int) "still empty" 0 (S.Pool.size ()));
    test_case "the pool respawns after shutdown" `Quick (fun () ->
        S.Pool.shutdown ();
        let hits, failures = run_counted ~helpers:2 ~n:16 (fun _ -> ()) in
        Alcotest.(check bool) "all served" true (Array.for_all (( = ) 1) hits);
        Alcotest.(check (list int)) "no failures" [] (List.map fst failures);
        Alcotest.(check bool) "workers respawned" true (S.Pool.size () >= 1));
    test_case "run validates its arguments" `Quick (fun () ->
        Alcotest.check_raises "negative n"
          (Invalid_argument "Pool.run: n must be non-negative") (fun () ->
            ignore (S.Pool.run ~helpers:1 ~n:(-1) (fun _ -> ())));
        Alcotest.check_raises "zero chunk"
          (Invalid_argument "Pool.run: chunk must be positive") (fun () ->
            ignore (S.Pool.run ~chunk:0 ~helpers:1 ~n:4 (fun _ -> ()))));
  ]

let suites =
  [ ("pool.failures", failure_tests); ("pool.shutdown", shutdown_tests) ]
