(** Tests for the sampling pipeline: rejection semantics and — most
    importantly — soundness of the pruning algorithms of Sec. 5.2:
    pruning must not change the sampled distribution. *)

open Helpers
module C = Scenic_core
module G = Scenic_geometry
module P = Scenic_prob

let test_case = Alcotest.test_case

let base_road_scenario = "import gtaLib\nego = Car\nCar visible\n"

(* sample positions of the ego or the first non-ego object *)
let positions ?(n = 400) ?(pick = `Object) ~prune ~seed src =
  Scenic_worlds.Scenic_worlds_init.init ();
  let sampler = Scenic_sampler.Sampler.of_source ~prune ~seed ~file:"t" src in
  List.init n (fun _ ->
      let scene = Scenic_sampler.Sampler.sample sampler in
      let o =
        match pick with
        | `Ego -> C.Scene.ego scene
        | `Object -> List.hd (C.Scene.non_ego scene)
      in
      C.Scene.position o)

let rejection_tests =
  [
    test_case "sampling is deterministic given the seed" `Quick (fun () ->
        let src = base_road_scenario in
        let p1 = positions ~n:20 ~prune:false ~seed:3 src in
        let p2 = positions ~n:20 ~prune:false ~seed:3 src in
        Alcotest.(check bool) "equal" true
          (List.for_all2 (G.Vec.equal ~eps:0.) p1 p2));
    test_case "different seeds give different scenes" `Quick (fun () ->
        let src = base_road_scenario in
        let p1 = positions ~n:5 ~prune:false ~seed:3 src in
        let p2 = positions ~n:5 ~prune:false ~seed:4 src in
        Alcotest.(check bool) "differ" true (p1 <> p2));
    test_case "iteration statistics accumulate" `Quick (fun () ->
        let scenario = compile base_road_scenario in
        let rng = P.Rng.create 5 in
        let sampler = Scenic_sampler.Rejection.create ~rng scenario in
        let _, s1 = Scenic_sampler.Rejection.sample_with_stats sampler in
        let _, s2 = Scenic_sampler.Rejection.sample_with_stats sampler in
        Alcotest.(check int) "total" s2.total_iterations
          (s1.iterations + s2.iterations));
    test_case "ensure_slots rejects cross-scenario slot collisions" `Quick
      (fun () ->
        let scenario =
          compile
            "import testLib\nego = Object at 0 @ 0\nx = (0, 1)\ny = (0, 1)\n\
             require x + y > 0.5\n"
        in
        Scenic_sampler.Rejection.ensure_slots scenario;
        let slotted = ref [] in
        Scenic_sampler.Analyze.iter_rnodes
          (fun n -> if n.C.Value.rslot >= 0 then slotted := n :: !slotted)
          scenario;
        match !slotted with
        | a :: b :: _ ->
            (* simulate a node slotted by a different scenario whose
               slot collides in this scenario's range: the dense memo
               would silently alias the two nodes' values *)
            b.C.Value.rslot <- a.C.Value.rslot;
            (try
               Scenic_sampler.Rejection.ensure_slots scenario;
               Alcotest.fail "slot collision accepted"
             with
            | C.Errors.Scenic_error (C.Errors.Invalid_argument_error _, _) ->
              ())
        | _ -> Alcotest.fail "expected at least two slotted nodes");
    test_case "all samples satisfy the stated requirement" `Quick (fun () ->
        let src =
          "import gtaLib\nego = Car\nc = Car visible\nrequire (distance to c) <= 15\n"
        in
        Scenic_worlds.Scenic_worlds_init.init ();
        let sampler = Scenic_sampler.Sampler.of_source ~seed:9 ~file:"t" src in
        for _ = 1 to 40 do
          let scene = Scenic_sampler.Sampler.sample sampler in
          let ego = C.Scene.ego scene and c = the_object scene in
          Alcotest.(check bool) "dist" true
            (G.Vec.dist (C.Scene.position ego) (C.Scene.position c) <= 15.0001)
        done);
  ]

(* --- pruning algorithm unit tests ---------------------------------------- *)

let mk_piece ~min_x ~min_y ~max_x ~max_y dir =
  { Scenic_sampler.Prune.poly = G.Polygon.rectangle ~min_x ~min_y ~max_x ~max_y; dir }

let prune_alg_tests =
  [
    test_case "pruneByHeading keeps antiparallel pairs within M" `Quick
      (fun () ->
        (* two antiparallel lanes close together, one one-way lane far away *)
        let a = mk_piece ~min_x:0. ~min_y:0. ~max_x:4. ~max_y:100. 0. in
        let b = mk_piece ~min_x:4. ~min_y:0. ~max_x:8. ~max_y:100. pi in
        let lone = mk_piece ~min_x:500. ~min_y:0. ~max_x:504. ~max_y:100. 0. in
        let map = [ a; b; lone ] in
        let result =
          Scenic_sampler.Prune.prune_by_heading ~map ~others:map
            ~rel:(pi -. 0.3, pi +. 0.3) ~delta:0.05 ~max_dist:30.
        in
        (* the isolated lane has no antiparallel partner within 30m *)
        let covers p = List.exists (fun q -> G.Polygon.contains q p) result in
        Alcotest.(check bool) "a kept" true (covers (G.Vec.make 2. 50.));
        Alcotest.(check bool) "b kept" true (covers (G.Vec.make 6. 50.));
        Alcotest.(check bool) "lone pruned" false (covers (G.Vec.make 502. 50.)));
    test_case "pruneByHeading with trivial interval keeps everything" `Quick
      (fun () ->
        let a = mk_piece ~min_x:0. ~min_y:0. ~max_x:4. ~max_y:100. 0. in
        let result =
          Scenic_sampler.Prune.prune_by_heading ~map:[ a ] ~others:[ a ]
            ~rel:(-.pi, pi) ~delta:0. ~max_dist:50.
        in
        Alcotest.(check bool) "kept" true
          (List.exists (fun q -> G.Polygon.contains q (G.Vec.make 2. 50.)) result));
    test_case "pruneByWidth restricts narrow isolated polygons" `Quick
      (fun () ->
        let narrow = mk_piece ~min_x:0. ~min_y:0. ~max_x:4. ~max_y:200. 0. in
        let wide = mk_piece ~min_x:20. ~min_y:0. ~max_x:40. ~max_y:200. 0. in
        let far_narrow = mk_piece ~min_x:0. ~min_y:500. ~max_x:4. ~max_y:700. 0. in
        let result =
          Scenic_sampler.Prune.prune_by_width ~map:[ narrow; wide; far_narrow ]
            ~min_width:8. ~max_dist:30.
        in
        let covers p = List.exists (fun q -> G.Polygon.contains q p) result in
        (* the wide polygon is untouched *)
        Alcotest.(check bool) "wide kept" true (covers (G.Vec.make 30. 100.));
        (* the narrow one near the wide one keeps its nearby part *)
        Alcotest.(check bool) "narrow near kept" true (covers (G.Vec.make 2. 100.));
        (* the far narrow polygon has nothing within 30m *)
        Alcotest.(check bool) "far narrow pruned" false
          (covers (G.Vec.make 2. 600.)));
    test_case "containment filter is the exact erosion" `Quick (fun () ->
        let container =
          G.Region.of_polygon (G.Polygon.rectangle ~min_x:0. ~min_y:0. ~max_x:10. ~max_y:10.)
        in
        match
          Scenic_sampler.Prune.containment_filter ~container ~min_radius:2.
            container
        with
        | None -> Alcotest.fail "expected a filter"
        | Some region ->
            Alcotest.(check bool) "center in" true
              (G.Region.contains region (G.Vec.make 5. 5.));
            Alcotest.(check bool) "margin out" false
              (G.Region.contains region (G.Vec.make 1. 5.)));
    test_case "containment filter erodes well-separated multi-piece unions"
      `Quick (fun () ->
        (* two convex pieces 50m apart: an object of bounding-box
           diagonal 10 cannot straddle them, so the union's erosion
           coincides with per-piece erosion and the filter fires *)
        let p1 = G.Polygon.rectangle ~min_x:0. ~min_y:0. ~max_x:10. ~max_y:10. in
        let p2 =
          G.Polygon.rectangle ~min_x:60. ~min_y:0. ~max_x:70. ~max_y:10.
        in
        let container = G.Region.of_polyset (G.Polyset.make [ p1; p2 ]) in
        match
          Scenic_sampler.Prune.containment_filter ~max_diameter:10. ~container
            ~min_radius:2. container
        with
        | None -> Alcotest.fail "expected the filter to fire"
        | Some region ->
            Alcotest.(check bool) "piece-1 center in" true
              (G.Region.contains region (G.Vec.make 5. 5.));
            Alcotest.(check bool) "piece-2 center in" true
              (G.Region.contains region (G.Vec.make 65. 5.));
            Alcotest.(check bool) "piece-1 margin out" false
              (G.Region.contains region (G.Vec.make 1. 5.));
            Alcotest.(check bool) "piece-2 margin out" false
              (G.Region.contains region (G.Vec.make 69. 5.)));
    test_case "containment filter declines straddleable multi-piece unions"
      `Quick (fun () ->
        (* pieces closer than the object's diagonal: a box can straddle
           the gap with all nine check points inside the union, so
           erosion would discard accepted-scene mass — the filter must
           decline, with or without a diameter bound *)
        let p1 = G.Polygon.rectangle ~min_x:0. ~min_y:0. ~max_x:10. ~max_y:10. in
        let p2 =
          G.Polygon.rectangle ~min_x:14. ~min_y:0. ~max_x:24. ~max_y:10.
        in
        let container = G.Region.of_polyset (G.Polyset.make [ p1; p2 ]) in
        let declines r = match r with None -> true | Some _ -> false in
        Alcotest.(check bool) "declines under a too-large diameter" true
          (declines
             (Scenic_sampler.Prune.containment_filter ~max_diameter:10.
                ~container ~min_radius:2. container));
        Alcotest.(check bool) "declines without a diameter bound" true
          (declines
             (Scenic_sampler.Prune.containment_filter ~container ~min_radius:2.
                container)));
  ]

(* --- analysis + end-to-end soundness -------------------------------------- *)

let ks_2d samples1 samples2 =
  (* compare marginal distributions of x and y with KS *)
  let xs l = List.map G.Vec.x l and ys l = List.map G.Vec.y l in
  Float.max
    (P.Stats.ks_distance (xs samples1) (xs samples2))
    (P.Stats.ks_distance (ys samples1) (ys samples2))

let soundness_check ?(n = 400) ?(tol = 0.12) ?pick name src =
  test_case (name ^ ": pruning preserves the distribution") `Slow (fun () ->
      (* pool several seeds so the comparison is not stream-coupled *)
      let multi prune =
        List.concat_map (fun seed -> positions ?pick ~n ~prune ~seed src) [ 1; 2 ]
      in
      let unpruned = multi false and pruned = multi true in
      let d = ks_2d unpruned pruned in
      if d > tol then
        Alcotest.failf "distribution shifted: KS distance %.3f > %.3f" d tol)

let analysis_tests =
  [
    test_case "containment pruning fires on a convex workspace" `Quick
      (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let scenario = compile "import mars\nego = Rover\nRock\n" in
        let stats = Scenic_sampler.Analyze.prune scenario in
        Alcotest.(check bool) "fired" true (stats.containment_rewrites >= 1));
    test_case "containment pruning declines non-convex workspaces" `Quick
      (fun () ->
        (* the 9-point containment check admits boxes straddling road
           concavities whose center lies inside the eroded band, so
           erosion on a multi-polygon union would discard accepted-
           scene mass (see the conformance differential oracle) *)
        Scenic_worlds.Scenic_worlds_init.init ();
        let scenario = compile "import gtaLib\nego = Car\nCar visible\n" in
        let stats = Scenic_sampler.Analyze.prune scenario in
        Alcotest.(check int) "no unsound erosion" 0 stats.containment_rewrites);
    test_case "orientation pruning fires on mutual-cone scenarios" `Quick
      (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let scenario =
          compile Scenic_harness.Scenarios.oncoming_anywhere
        in
        let stats = Scenic_sampler.Analyze.prune scenario in
        Alcotest.(check bool) "fired" true (stats.orientation_rewrites >= 1));
    test_case "width pruning fires on bumper-to-bumper" `Quick (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let scenario = compile Scenic_harness.Scenarios.bumper_to_bumper in
        let stats = Scenic_sampler.Analyze.prune scenario in
        Alcotest.(check bool) "fired" true (stats.width_rewrites >= 1));
    test_case "float_bounds sees through common op chains" `Quick (fun () ->
        let v = lookup (eval_program "x = ((-10 deg, 10 deg)) * 2 + 1\n") "x" in
        match Scenic_sampler.Analyze.float_bounds v with
        | Some (lo, hi) ->
            check_float ~eps:1e-9 "lo" (1. -. (2. *. G.Angle.of_degrees 10.)) lo;
            check_float ~eps:1e-9 "hi" (1. +. (2. *. G.Angle.of_degrees 10.)) hi
        | None -> Alcotest.fail "expected bounds");
    soundness_check "single car" "import gtaLib\nego = Car\nCar visible\n";
    soundness_check "oncoming anywhere" Scenic_harness.Scenarios.oncoming_anywhere;
    soundness_check ~n:150 ~pick:`Ego "bumper ego position"
      Scenic_harness.Scenarios.bumper_to_bumper;
  ]

let suites =
  [
    ("sampler.rejection", rejection_tests);
    ("sampler.prune-algorithms", prune_alg_tests);
    ("sampler.analysis", analysis_tests);
  ]
