(** Tests for the multicore batch sampler ({!Scenic_sampler.Parallel}):
    the bit-identical-for-every-jobs-count contract, index-ordered
    outcome collection, merged diagnosis, batch budget aggregation, and
    fault containment inside worker domains. *)

open Helpers
module C = Scenic_core
module P = Scenic_prob
module S = Scenic_sampler
module R = Scenic_harness.Robustness

let test_case = Alcotest.test_case
let base = "import testLib\nego = Object at 0 @ 0\n"

(* moderate rejection rate, so determinism covers rejected draws too *)
let filtered = base ^ "x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x > 3\n"
let unsat = base ^ "x = (0, 1)\nObject at 5 @ 5\nrequire x > 2\n"

let scene_strings batch =
  List.map C.Scene.to_string (S.Parallel.scenes batch)

let determinism_tests =
  [
    test_case "jobs 1 and jobs 8 draw bit-identical batches" `Slow (fun () ->
        (* one compiled scenario for both runs: object ids are assigned
           by a global counter at compile time, so recompiling would
           shift the ids (but not the sampled values) between batches *)
        let scenario = compile filtered in
        let draw jobs = S.Parallel.run ~jobs ~seed:9 ~n:16 scenario in
        let b1 = draw 1 and b8 = draw 8 in
        Alcotest.(check (list string))
          "same scenes, same order" (scene_strings b1) (scene_strings b8);
        Alcotest.(check int)
          "16 scenes each" 16
          (List.length (S.Parallel.scenes b1)));
    test_case "jobs 1, 2 and 4 draw bit-identical batches" `Slow (fun () ->
        (* the CI determinism contract for the chunked scheduler: any
           jobs count partitions the index space differently, yet every
           sample still draws from its own stream *)
        let scenario = compile filtered in
        let draw jobs = S.Parallel.run ~jobs ~seed:17 ~n:24 scenario in
        let reference = scene_strings (draw 1) in
        List.iter
          (fun jobs ->
            Alcotest.(check (list string))
              (Printf.sprintf "jobs %d matches jobs 1" jobs)
              reference
              (scene_strings (draw jobs)))
          [ 2; 4 ]);
    test_case "the persistent pool serves back-to-back batches" `Slow
      (fun () ->
        (* worker domains outlive a batch; reusing them must neither
           deadlock nor perturb results *)
        let scenario = compile filtered in
        let draw () = scene_strings (S.Parallel.run ~jobs:4 ~seed:5 ~n:16 scenario) in
        let first = draw () in
        for _ = 1 to 3 do
          Alcotest.(check (list string)) "reused pool, same batch" first (draw ())
        done;
        Alcotest.(check bool) "pool retained its workers" true
          (S.Pool.size () >= 1));
    test_case "merged diagnosis is identical across jobs counts" `Slow
      (fun () ->
        let draw jobs = R.parallel_batch ~jobs ~seed:9 ~n:16 filtered in
        let d1 = (draw 1).S.Parallel.diagnosis
        and d8 = (draw 8).S.Parallel.diagnosis in
        Alcotest.(check int) "total" (S.Diagnose.total d1)
          (S.Diagnose.total d8);
        Alcotest.(check int) "accepted" (S.Diagnose.accepted d1)
          (S.Diagnose.accepted d8);
        Alcotest.(check (array int))
          "per-requirement violations" d1.S.Diagnose.violations
          d8.S.Diagnose.violations;
        Alcotest.(check (list (pair string int)))
          "local rejections"
          (S.Diagnose.local_rejections d1)
          (S.Diagnose.local_rejections d8));
    test_case "batch totals match the per-sample outcomes" `Quick (fun () ->
        let b = R.parallel_batch ~jobs:4 ~seed:9 ~n:12 filtered in
        let per_sample_total =
          Array.fold_left
            (fun acc -> function
              | S.Parallel.Scene (_, stats) ->
                  acc + stats.S.Rejection.iterations
              | S.Parallel.Exhausted _ | S.Parallel.Faulted _ -> acc)
            0 b.S.Parallel.outcomes
        in
        Alcotest.(check int) "diagnosis total = sum of per-sample stats"
          per_sample_total
          (S.Diagnose.total b.S.Parallel.diagnosis);
        Alcotest.(check int) "usage mirrors the diagnosis" per_sample_total
          b.S.Parallel.usage.S.Budget.total_iterations;
        Alcotest.(check int) "accepted = batch size" 12
          (S.Diagnose.accepted b.S.Parallel.diagnosis));
    test_case "sample i reproduces outside the batch via its stream" `Quick
      (fun () ->
        (* the documented contract: scene i of a batch is what a bare
           rejection sampler draws from rng_for_sample ~seed i *)
        let scenario = compile filtered in
        let b = S.Parallel.run ~jobs:3 ~seed:21 ~n:5 scenario in
        List.iteri
          (fun i batch_scene ->
            let rng = S.Parallel.rng_for_sample ~seed:21 i in
            let r = S.Rejection.create ~rng scenario in
            Alcotest.(check string)
              (Printf.sprintf "scene %d" i)
              (C.Scene.to_string (S.Rejection.sample r))
              (C.Scene.to_string batch_scene))
          (S.Parallel.scenes b));
    test_case "n = 0 yields an empty batch" `Quick (fun () ->
        let b = R.parallel_batch ~jobs:4 ~seed:1 ~n:0 base in
        Alcotest.(check int) "no outcomes" 0
          (Array.length b.S.Parallel.outcomes);
        Alcotest.(check int) "no samples" 0 b.S.Parallel.usage.S.Budget.samples);
    test_case "invalid jobs and n are rejected" `Quick (fun () ->
        Alcotest.check_raises "jobs 0"
          (Invalid_argument "Parallel.run: jobs must be positive") (fun () ->
            ignore (R.parallel_batch ~jobs:0 ~seed:1 ~n:1 base));
        Alcotest.check_raises "negative n"
          (Invalid_argument "Parallel.run: n must be non-negative") (fun () ->
            ignore (R.parallel_batch ~jobs:1 ~seed:1 ~n:(-1) base)));
  ]

let containment_tests =
  [
    test_case "a faulted sample does not poison its siblings" `Quick (fun () ->
        let b =
          R.parallel_batch ~jobs:4 ~seed:9 ~n:8
            ~prepare:(R.fault_sample ~index:3 ())
            filtered
        in
        Array.iteri
          (fun i outcome ->
            match (i, outcome) with
            | 3, S.Parallel.Faulted f ->
                Alcotest.(check bool) "fault message" true
                  (String.length f.S.Parallel.f_fault.C.Errors.message > 0);
                Alcotest.(check bool) "classified transient" true
                  (f.S.Parallel.f_fault.C.Errors.severity = C.Errors.Transient);
                Alcotest.(check int) "single attempt" 1
                  f.S.Parallel.f_attempts
            | 3, _ -> Alcotest.fail "sample 3 should have faulted"
            | _, S.Parallel.Scene _ -> ()
            | i, _ -> Alcotest.failf "sample %d should have sampled" i)
          b.S.Parallel.outcomes;
        Alcotest.(check int) "7 healthy scenes" 7
          (List.length (S.Parallel.scenes b)));
    test_case "siblings are unchanged by the injected fault" `Slow (fun () ->
        let scenario = compile filtered in
        let clean = S.Parallel.run ~jobs:4 ~seed:9 ~n:8 scenario in
        let faulty =
          S.Parallel.run ~jobs:4 ~seed:9 ~n:8
            ~prepare:(R.fault_sample ~index:3 ())
            scenario
        in
        Array.iteri
          (fun i outcome ->
            if i <> 3 then
              match (outcome, faulty.S.Parallel.outcomes.(i)) with
              | S.Parallel.Scene (a, _), S.Parallel.Scene (b, _) ->
                  Alcotest.(check string)
                    (Printf.sprintf "scene %d" i)
                    (C.Scene.to_string a) (C.Scene.to_string b)
              | _ -> Alcotest.failf "sample %d should have sampled" i)
          clean.S.Parallel.outcomes);
    test_case "a scripted sample pins only its own draw" `Quick (fun () ->
        let src = base ^ "Object at 5 @ 5, with tag (0, 10)\n" in
        let b =
          R.parallel_batch ~jobs:2 ~seed:7 ~n:4
            ~prepare:(R.script_sample ~index:2 [ 0.3 ])
            src
        in
        match b.S.Parallel.outcomes.(2) with
        | S.Parallel.Scene (scene, _) ->
            let tagged =
              List.find
                (fun (o : C.Scene.cobj) -> List.mem_assoc "tag" o.c_props)
                scene.C.Scene.objs
            in
            check_float ~eps:1e-9 "forced tag" 3.
              (C.Ops.as_float (List.assoc "tag" tagged.c_props))
        | _ -> Alcotest.fail "sample 2 should have sampled");
  ]

let retry_tests =
  [
    test_case "a one-shot transient fault is healed by one retry" `Quick
      (fun () ->
        let scenario = compile filtered in
        let b =
          S.Parallel.run ~jobs:4 ~seed:9 ~n:8 ~retries:1
            ~prepare:(R.fault_sample ~index:3 ())
            scenario
        in
        Alcotest.(check int) "all 8 scenes delivered" 8
          (List.length (S.Parallel.scenes b));
        Alcotest.(check int) "one retry burned" 1 b.S.Parallel.retries;
        Alcotest.(check (list int)) "nothing quarantined" []
          b.S.Parallel.quarantined;
        (* the healed sample drew from the attempt-1 sub-stream: the
           documented contract that retries stay reproducible *)
        match b.S.Parallel.outcomes.(3) with
        | S.Parallel.Scene (scene, _) ->
            let rng = S.Parallel.rng_for_attempt ~seed:9 ~attempt:1 3 in
            let r = S.Rejection.create ~rng scenario in
            Alcotest.(check string) "attempt-1 stream"
              (C.Scene.to_string (S.Rejection.sample r))
              (C.Scene.to_string scene)
        | _ -> Alcotest.fail "sample 3 should have healed");
    test_case "retried batches are bit-identical at any jobs count" `Slow
      (fun () ->
        let scenario = compile filtered in
        let prepare_attempt ~index ~attempt rng =
          if index = 2 && attempt < 2 then P.Rng.inject_failure rng ~after:0
        in
        let draw jobs =
          S.Parallel.run ~jobs ~seed:13 ~n:12 ~retries:3 ~prepare_attempt
            scenario
        in
        let fingerprint b = List.map C.Scene.to_string (S.Parallel.scenes b) in
        let reference = draw 1 in
        Alcotest.(check int) "two retries burned" 2 reference.S.Parallel.retries;
        List.iter
          (fun jobs ->
            let b = draw jobs in
            Alcotest.(check (list string))
              (Printf.sprintf "jobs %d" jobs)
              (fingerprint reference) (fingerprint b);
            Alcotest.(check int)
              (Printf.sprintf "jobs %d retries" jobs)
              reference.S.Parallel.retries b.S.Parallel.retries)
          [ 2; 4 ]);
    test_case "a persistent transient fault exhausts retries into quarantine"
      `Quick (fun () ->
        let prepare_attempt ~index ~attempt:_ rng =
          if index = 3 then P.Rng.inject_failure rng ~after:0
        in
        let b =
          R.parallel_batch ~jobs:2 ~seed:9 ~n:6 ~retries:2 ~prepare_attempt
            filtered
        in
        (match b.S.Parallel.outcomes.(3) with
        | S.Parallel.Faulted f ->
            Alcotest.(check int) "initial + 2 retries" 3
              f.S.Parallel.f_attempts;
            Alcotest.(check bool) "still transient" true
              (f.S.Parallel.f_fault.C.Errors.severity = C.Errors.Transient)
        | _ -> Alcotest.fail "sample 3 should have faulted");
        Alcotest.(check (list int)) "quarantined" [ 3 ]
          b.S.Parallel.quarantined;
        Alcotest.(check int) "retries counted" 2 b.S.Parallel.retries;
        Alcotest.(check int) "siblings survived" 5
          (List.length (S.Parallel.scenes b)));
    test_case "a permanent fault is quarantined without burning retries"
      `Quick (fun () ->
        let prepare_attempt ~index ~attempt:_ _rng =
          if index = 1 then
            C.Errors.raise_at (C.Errors.Invalid_argument_error "injected bug")
        in
        let b =
          R.parallel_batch ~jobs:2 ~seed:9 ~n:4 ~retries:5 ~prepare_attempt
            filtered
        in
        (match b.S.Parallel.outcomes.(1) with
        | S.Parallel.Faulted f ->
            Alcotest.(check bool) "classified permanent" true
              (f.S.Parallel.f_fault.C.Errors.severity = C.Errors.Permanent);
            Alcotest.(check int) "single attempt" 1 f.S.Parallel.f_attempts
        | _ -> Alcotest.fail "sample 1 should have faulted");
        Alcotest.(check int) "no retries burned" 0 b.S.Parallel.retries;
        Alcotest.(check (list int)) "quarantined" [ 1 ]
          b.S.Parallel.quarantined);
    test_case "two faulting samples both surface, in index order" `Quick
      (fun () ->
        (* regression for the pool's first-wins failure reporting: both
           faulted indices must appear, deterministically ordered *)
        let prepare_attempt ~index ~attempt:_ rng =
          if index = 1 || index = 5 then P.Rng.inject_failure rng ~after:0
        in
        let b =
          R.parallel_batch ~jobs:4 ~seed:9 ~n:8 ~prepare_attempt filtered
        in
        Alcotest.(check (list int)) "both quarantined, ascending" [ 1; 5 ]
          b.S.Parallel.quarantined;
        Alcotest.(check int) "six healthy scenes" 6
          (List.length (S.Parallel.scenes b)));
    test_case "budget exhaustion is retried on a fresh sub-stream" `Quick
      (fun () ->
        let b =
          R.parallel_batch ~jobs:2 ~max_iters:10 ~seed:1 ~n:3 ~retries:1 unsat
        in
        Array.iter
          (function
            | S.Parallel.Exhausted _ -> ()
            | _ -> Alcotest.fail "expected exhaustion")
          b.S.Parallel.outcomes;
        Alcotest.(check int) "one retry per sample" 3 b.S.Parallel.retries;
        (* both attempts' iterations are accounted *)
        Alcotest.(check int) "20 iterations per sample" 60
          b.S.Parallel.usage.S.Budget.total_iterations;
        Alcotest.(check (list int)) "exhaustion is not quarantine" []
          b.S.Parallel.quarantined);
    test_case "negative retries is rejected" `Quick (fun () ->
        Alcotest.check_raises "retries -1"
          (Invalid_argument "Parallel.run: retries must be non-negative")
          (fun () ->
            ignore (R.parallel_batch ~jobs:1 ~seed:1 ~n:1 ~retries:(-1) base)));
  ]

let budget_tests =
  [
    test_case "first exhaustion reports the lowest index" `Quick (fun () ->
        let b = R.parallel_batch ~jobs:3 ~max_iters:10 ~seed:1 ~n:6 unsat in
        Alcotest.(check int) "all exhausted" 6
          b.S.Parallel.usage.S.Budget.exhausted;
        (match b.S.Parallel.usage.S.Budget.first_exhaustion with
        | Some (0, S.Budget.Iteration_limit 10) -> ()
        | Some (i, _) -> Alcotest.failf "expected index 0, got %d" i
        | None -> Alcotest.fail "expected an exhaustion");
        Alcotest.(check int) "aggregated iterations" 60
          b.S.Parallel.usage.S.Budget.total_iterations;
        Alcotest.(check int) "merged diagnosis sees all 60 rejections" 60
          (S.Diagnose.total b.S.Parallel.diagnosis));
    test_case "exhausted samples carry best-effort draws" `Quick (fun () ->
        let b =
          R.parallel_batch ~jobs:2 ~max_iters:10 ~track_best:true ~seed:1 ~n:2
            unsat
        in
        Array.iter
          (function
            | S.Parallel.Exhausted { best = Some (_, violations); _ } ->
                Alcotest.(check int) "one violated requirement" 1 violations
            | S.Parallel.Exhausted { best = None; _ } ->
                Alcotest.fail "expected a best-effort draw"
            | _ -> Alcotest.fail "expected exhaustion")
          b.S.Parallel.outcomes);
    test_case "mixed batches aggregate only true exhaustions" `Quick (fun () ->
        (* a satisfiable scenario under a generous cap: no exhaustions *)
        let b = R.parallel_batch ~jobs:2 ~max_iters:5_000 ~seed:3 ~n:6 filtered in
        Alcotest.(check int) "none exhausted" 0
          b.S.Parallel.usage.S.Budget.exhausted;
        Alcotest.(check bool) "no first exhaustion" true
          (b.S.Parallel.usage.S.Budget.first_exhaustion = None));
  ]

let suites =
  [
    ("parallel.determinism", determinism_tests);
    ("parallel.containment", containment_tests);
    ("parallel.retries", retry_tests);
    ("parallel.budget", budget_tests);
  ]
