(** Aggregated test runner for the whole repository. *)

let () =
  Scenic_worlds.Scenic_worlds_init.init ();
  Alcotest.run "scenic"
    (Test_geometry.suites @ Test_prob.suites @ Test_lang.suites @ Test_core.suites @ Test_sampler.suites @ Test_diagnose.suites @ Test_robustness.suites @ Test_pool.suites @ Test_parallel.suites @ Test_telemetry.suites @ Test_worlds.suites @ Test_render.suites @ Test_detector.suites @ Test_integration.suites @ Test_properties.suites @ Test_mcmc.suites @ Test_dynamics.suites @ Test_extract.suites @ Test_roundtrip.suites @ Test_lint.suites @ Test_propagate.suites @ Test_conformance.suites @ Test_server.suites @ Test_cli.suites)
