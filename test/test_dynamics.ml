(** Tests for the dynamics substrate: kinematics, the controller, the
    STL monitor, and the falsification loop. *)

open Helpers
module G = Scenic_geometry
module Dyn = Scenic_dynamics

let test_case = Alcotest.test_case

let north = { Dyn.Simulate.field = G.Vectorfield.constant ~name:"north" 0. }

(* scene with ego at origin and one lead car straight ahead *)
let two_car_scene ?(gap = 20.) ?(ego_speed = 10.) ?(lead_speed = 10.)
    ?(brake_at = "") () =
  sample_scene ~seed:3
    (Printf.sprintf
       "import testLib\n\
        ego = Object at 0 @ -40, facing 0 deg, with width 1.8, with height \
        4.5, with speed %g\n\
        Object at 0 @ %g, facing 0 deg, with width 1.8, with height 4.5, \
        with speed %g%s, with requireVisible False\n"
       ego_speed (-40. +. gap) lead_speed
       (if brake_at = "" then "" else Printf.sprintf ", with brakeAt %s" brake_at))

let simulate_tests =
  [
    test_case "constant-speed vehicle advances along the field" `Quick
      (fun () ->
        let scene = two_car_scene () in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames =
          Dyn.Simulate.rollout ~controller:(fun _ -> 0.) ~duration:2. sim
        in
        let first = List.hd frames
        and last = List.nth frames (List.length frames - 1) in
        let y fr = G.Vec.y (G.Rect.center fr.Dyn.Simulate.f_boxes.(1)) in
        check_float ~eps:0.2 "moved 20m" 20. (y last -. y first));
    test_case "braking vehicle stops" `Quick (fun () ->
        let scene = two_car_scene ~brake_at:"0.5" () in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames =
          Dyn.Simulate.rollout ~controller:(fun _ -> 0.) ~duration:4. sim
        in
        let last = List.nth frames (List.length frames - 1) in
        check_float ~eps:1e-6 "stopped" 0. last.Dyn.Simulate.f_speeds.(1));
    test_case "lead_vehicle picks the nearest car ahead in lane" `Quick
      (fun () ->
        let scene =
          sample_scene ~seed:3
            "import testLib\n\
             ego = Object at 0 @ -40, facing 0 deg\n\
             near = Object at 0.5 @ -30, facing 0 deg, with requireVisible \
             False\n\
             far = Object at -0.5 @ -10, facing 0 deg, with requireVisible \
             False\n\
             offlane = Object at 8 @ -35, facing 0 deg, with requireVisible \
             False\n"
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        match Dyn.Simulate.lead_vehicle sim with
        | Some (v, d) ->
            check_float ~eps:0.5 "distance" 10. d;
            check_float ~eps:0.6 "its x" 0.5 (G.Vec.x v.Dyn.Simulate.position)
        | None -> Alcotest.fail "expected a lead vehicle");
    test_case "controller avoids a gentle braking lead" `Quick (fun () ->
        let scene =
          two_car_scene ~gap:30. ~ego_speed:8. ~lead_speed:8. ~brake_at:"2.0" ()
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames = Dyn.Simulate.rollout ~duration:8. sim in
        Alcotest.(check bool) "no collision" true
          (Dyn.Monitor.robustness (Dyn.Monitor.no_collision ()) frames > 0.));
    test_case "controller fails on an aggressive cut-in" `Quick (fun () ->
        (* very close, fast closing, immediate hard brake *)
        let scene =
          two_car_scene ~gap:7. ~ego_speed:14. ~lead_speed:4. ~brake_at:"0.1" ()
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames = Dyn.Simulate.rollout ~duration:6. sim in
        Alcotest.(check bool) "collision" true
          (Dyn.Monitor.robustness (Dyn.Monitor.no_collision ()) frames <= 0.));
  ]

let monitor_tests =
  [
    test_case "always = min over time, eventually = max" `Quick (fun () ->
        (* fabricate a trace through the simulator: speeds ramp up *)
        let scene = two_car_scene ~gap:40. ~ego_speed:0. () in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames = Dyn.Simulate.rollout ~duration:4. sim in
        let speed_atom = Dyn.Monitor.atom "v" (fun fr -> fr.Dyn.Simulate.f_speeds.(0)) in
        let always = Dyn.Monitor.robustness (Always speed_atom) frames in
        let eventually = Dyn.Monitor.robustness (Eventually speed_atom) frames in
        check_float ~eps:1e-9 "always is the start speed" 0. always;
        Alcotest.(check bool) "eventually larger" true (eventually > 5.));
    test_case "negation and conjunction" `Quick (fun () ->
        let scene = two_car_scene () in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames = Dyn.Simulate.rollout ~duration:1. sim in
        let pos = Dyn.Monitor.atom "p" (fun _ -> 2.) in
        let neg = Dyn.Monitor.atom "n" (fun _ -> -3.) in
        check_float "not" (-2.) (Dyn.Monitor.robustness (Not pos) frames);
        check_float "and" (-3.)
          (Dyn.Monitor.robustness (And (pos, neg)) frames);
        check_float "or" 2. (Dyn.Monitor.robustness (Or (pos, neg)) frames));
    test_case "box separation goes negative on intersection" `Quick (fun () ->
        let a = G.Rect.make ~center:G.Vec.zero ~heading:0. ~width:2. ~height:4. in
        let b = G.Rect.make ~center:(G.Vec.make 0. 2.) ~heading:0. ~width:2. ~height:4. in
        let c = G.Rect.make ~center:(G.Vec.make 0. 30.) ~heading:0. ~width:2. ~height:4. in
        Alcotest.(check bool) "overlap negative" true
          (Dyn.Monitor.box_separation a b < 0.);
        Alcotest.(check bool) "apart positive" true
          (Dyn.Monitor.box_separation a c > 20.));
  ]

let falsify_tests =
  [
    test_case "falsifier finds counterexamples in a risky scenario" `Slow
      (fun () ->
        let scenario =
          "import gtaLib\n\
           ego = EgoCar at 1.75 @ -60, facing roadDirection, with speed (11, \
           14)\n\
           lead = Car ahead of ego by (6, 12), with speed (3, 6), with \
           brakeAt (0.2, 1.0)\n"
        in
        let result =
          Dyn.Falsify.run ~n_seeds:15 ~n_refine:5 ~seed:5
            ~formula:(Dyn.Monitor.no_collision ()) scenario
        in
        Alcotest.(check bool) "found some" true (result.counterexamples >= 1);
        (* outcomes are sorted worst-first *)
        match result.outcomes with
        | a :: b :: _ ->
            Alcotest.(check bool) "sorted" true (a.rob <= b.rob)
        | _ -> Alcotest.fail "expected outcomes");
    test_case "mutation scenario reproduces the scene approximately" `Quick
      (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let scene =
          sample_scene ~seed:5
            "import gtaLib\nego = EgoCar at 1.75 @ -20, facing roadDirection\n\
             Car ahead of ego by 10\n"
        in
        let src = Dyn.Falsify.mutation_scenario ~scale:0.3 scene in
        let again = sample_scene ~seed:9 src in
        let d =
          G.Vec.dist
            (Scenic_core.Scene.position (Scenic_core.Scene.ego scene))
            (Scenic_core.Scene.position (Scenic_core.Scene.ego again))
        in
        Alcotest.(check bool) "close" true (d < 2.));
  ]

(* --- STL semantics: empty traces and property tests ---------------------- *)

(* a synthetic single-vehicle frame: atoms over it read f_speeds.(0) *)
let mk_frame t speed =
  let b = G.Rect.make ~center:G.Vec.zero ~heading:0. ~width:1. ~height:1. in
  {
    Dyn.Simulate.f_time = t;
    f_boxes = [| b |];
    f_speeds = [| speed |];
    f_max_radius = G.Rect.circumradius b;
    f_centers = lazy (G.Spatial_index.build_pts [| G.Vec.zero |]);
  }

(* a random trace / formula pair, pure in (seed, index) *)
let random_trace rng =
  let n = 1 + Scenic_prob.Rng.int rng 12 in
  List.init n (fun i ->
      mk_frame (float_of_int i) ((Scenic_prob.Rng.float rng *. 20.) -. 10.))

let speed_atom c =
  Dyn.Monitor.atom
    (Printf.sprintf "v-%g" c)
    (fun fr -> fr.Dyn.Simulate.f_speeds.(0) -. c)

let rec random_formula rng depth : Dyn.Monitor.formula =
  if depth = 0 then speed_atom ((Scenic_prob.Rng.float rng *. 10.) -. 5.)
  else
    match Scenic_prob.Rng.int rng 6 with
    | 0 -> speed_atom ((Scenic_prob.Rng.float rng *. 10.) -. 5.)
    | 1 -> Not (random_formula rng (depth - 1))
    | 2 -> And (random_formula rng (depth - 1), random_formula rng (depth - 1))
    | 3 -> Or (random_formula rng (depth - 1), random_formula rng (depth - 1))
    | 4 -> Always (random_formula rng (depth - 1))
    | _ -> Eventually (random_formula rng (depth - 1))

(* definitional brute-force oracle: temporal operators fold over the
   explicit list of non-empty suffixes, each scored independently *)
let rec suffixes = function
  | [] -> []
  | _ :: rest as tr -> tr :: suffixes rest

let rec oracle (f : Dyn.Monitor.formula) tr =
  match f with
  | Atom (_, a) -> a (List.hd tr)
  | Not f -> -.oracle f tr
  | And (a, b) -> Float.min (oracle a tr) (oracle b tr)
  | Or (a, b) -> Float.max (oracle a tr) (oracle b tr)
  | Always f ->
      List.fold_left Float.min infinity (List.map (oracle f) (suffixes tr))
  | Eventually f ->
      List.fold_left Float.max neg_infinity (List.map (oracle f) (suffixes tr))

let stl_property_tests =
  let check_equal what a b =
    (* robustness values must agree exactly, not approximately: both
       sides compute the same min/max/neg lattice over the same floats *)
    if not (Float.equal a b) then
      Alcotest.failf "%s: %.17g <> %.17g" what a b
  in
  [
    test_case "empty trace raises, in both polarities" `Quick (fun () ->
        let a = speed_atom 0. in
        let expect_invalid what f =
          match Dyn.Monitor.robustness f [] with
          | exception Invalid_argument _ -> ()
          | r -> Alcotest.failf "%s on [] returned %g instead of raising" what r
        in
        (* the old semantics returned neg_infinity for the atom, which
           made the negation claim +infinity: an asymmetry where each
           polarity saw a different verdict on the same empty evidence *)
        expect_invalid "atom" a;
        expect_invalid "not atom" (Not a);
        expect_invalid "always" (Always a);
        expect_invalid "not always" (Not (Always a)));
    test_case "De Morgan: not always = eventually not (100 random cases)"
      `Quick (fun () ->
        for i = 0 to 99 do
          let rng = Scenic_prob.Rng.create ~stream:i 77 in
          let tr = random_trace rng in
          let f = random_formula rng 3 in
          check_equal
            (Printf.sprintf "case %d" i)
            (Dyn.Monitor.robustness (Not (Always f)) tr)
            (Dyn.Monitor.robustness (Eventually (Not f)) tr)
        done);
    test_case "and/or are min/max of operand robustness" `Quick (fun () ->
        for i = 0 to 99 do
          let rng = Scenic_prob.Rng.create ~stream:i 78 in
          let tr = random_trace rng in
          let f = random_formula rng 2 and g = random_formula rng 2 in
          let rf = Dyn.Monitor.robustness f tr
          and rg = Dyn.Monitor.robustness g tr in
          check_equal
            (Printf.sprintf "and %d" i)
            (Float.min rf rg)
            (Dyn.Monitor.robustness (And (f, g)) tr);
          check_equal
            (Printf.sprintf "or %d" i)
            (Float.max rf rg)
            (Dyn.Monitor.robustness (Or (f, g)) tr)
        done);
    test_case "random formulas agree with the all-suffixes oracle" `Quick
      (fun () ->
        for i = 0 to 199 do
          let rng = Scenic_prob.Rng.create ~stream:i 79 in
          let tr = random_trace rng in
          let f = random_formula rng 4 in
          check_equal
            (Printf.sprintf "case %d" i)
            (oracle f tr)
            (Dyn.Monitor.robustness f tr)
        done);
  ]

(* --- per-tick spatial index vs linear oracle ----------------------------- *)

let index_tests =
  [
    test_case "indexed ego_separation equals the linear oracle" `Quick
      (fun () ->
        for i = 0 to 149 do
          let rng = Scenic_prob.Rng.create ~stream:i 80 in
          let k = 2 + Scenic_prob.Rng.int rng 14 in
          let boxes =
            Array.init k (fun _ ->
                G.Rect.make
                  ~center:
                    (G.Vec.make
                       ((Scenic_prob.Rng.float rng *. 200.) -. 100.)
                       ((Scenic_prob.Rng.float rng *. 200.) -. 100.))
                  ~heading:(Scenic_prob.Rng.float rng *. 6.3)
                  ~width:(0.5 +. (Scenic_prob.Rng.float rng *. 3.))
                  ~height:(0.5 +. (Scenic_prob.Rng.float rng *. 5.)))
          in
          let fr =
            {
              Dyn.Simulate.f_time = 0.;
              f_boxes = boxes;
              f_speeds = Array.make k 0.;
              f_max_radius =
                Array.fold_left
                  (fun acc b -> Float.max acc (G.Rect.circumradius b))
                  0. boxes;
              f_centers =
                lazy (G.Spatial_index.build_pts (Array.map G.Rect.center boxes));
            }
          in
          let fast = Dyn.Monitor.ego_separation fr
          and slow = Dyn.Monitor.ego_separation_linear fr in
          if not (Float.equal fast slow) then
            Alcotest.failf "frame %d (%d vehicles): index %.17g <> linear %.17g"
              i k fast slow
        done);
    test_case "clustered frames (dense cells) stay exact" `Quick (fun () ->
        for i = 0 to 49 do
          let rng = Scenic_prob.Rng.create ~stream:i 81 in
          let k = 3 + Scenic_prob.Rng.int rng 8 in
          (* all vehicles inside a 10m square: everything intersects *)
          let boxes =
            Array.init k (fun _ ->
                G.Rect.make
                  ~center:
                    (G.Vec.make
                       (Scenic_prob.Rng.float rng *. 10.)
                       (Scenic_prob.Rng.float rng *. 10.))
                  ~heading:0. ~width:2. ~height:4.5)
          in
          let fr =
            {
              Dyn.Simulate.f_time = 0.;
              f_boxes = boxes;
              f_speeds = Array.make k 0.;
              f_max_radius =
                Array.fold_left
                  (fun acc b -> Float.max acc (G.Rect.circumradius b))
                  0. boxes;
              f_centers =
                lazy (G.Spatial_index.build_pts (Array.map G.Rect.center boxes));
            }
          in
          if
            not
              (Float.equal
                 (Dyn.Monitor.ego_separation fr)
                 (Dyn.Monitor.ego_separation_linear fr))
          then Alcotest.failf "clustered frame %d diverged" i
        done);
  ]

(* --- behaviors: language, timeline, simulation --------------------------- *)

module B = Scenic_core.Behavior

let behavior_tests =
  [
    test_case "behavior/do/require-always round-trips through the printer"
      `Quick (fun () ->
        let src =
          "behavior cut_in(delay):\n\
          \    do drive for delay\n\
          \    do brake\n\
           ego = Object\n\
           require always ego.speed > 2\n\
           require eventually ego.speed > 5\n"
        in
        let p1 = Scenic_lang.Parser.parse src in
        let printed = Scenic_lang.Pretty.program_to_string p1 in
        let p2 = Scenic_lang.Parser.parse printed in
        Alcotest.(check string)
          "print . parse . print is stable" printed
          (Scenic_lang.Pretty.program_to_string p2));
    test_case "lint accepts behaviors and temporal requires" `Quick (fun () ->
        let src =
          "behavior cut_in(delay):\n\
          \    do drive for delay\n\
          \    do brake\n\
           ego = Object with behavior cut_in(0.5)\n\
           require always ego.speed > 0\n"
        in
        let diags = Scenic_lang.Lint.lint (Scenic_lang.Parser.parse src) in
        Alcotest.(check bool) "no errors" false (Scenic_lang.Lint.has_errors diags));
    test_case "brake_after timeline: drive segment then held brake" `Quick
      (fun () ->
        let scene =
          sample_scene ~seed:3
            "import testLib\n\
             ego = Object at 0 @ 0\n\
             Object at 0 @ 10, with behavior brake_after(0.5), with \
             requireVisible False\n"
        in
        let o = the_object scene in
        match
          List.assoc_opt "behavior" o.Scenic_core.Scene.c_props
          |> Option.map B.of_value
        with
        | Some (Some nodes) -> (
            match B.timeline nodes with
            | [ d; b ] ->
                check_float "drive start" 0. d.B.s_start;
                check_float "drive stop" 0.5 d.B.s_stop;
                Alcotest.(check bool) "drive prim" true (d.B.s_leaf.B.l_prim = B.Drive);
                check_float "brake start" 0.5 b.B.s_start;
                Alcotest.(check bool) "brake held" true (b.B.s_stop = infinity);
                Alcotest.(check bool) "brake prim" true (b.B.s_leaf.B.l_prim = B.Brake)
            | segs -> Alcotest.failf "expected 2 segments, got %d" (List.length segs))
        | _ -> Alcotest.fail "expected a decodable behavior property");
    test_case "do ... for caps a sub-sequence; under-run extends" `Quick
      (fun () ->
        (* [do drive for 1.0] where drive is unbounded: clipped at 1.0 *)
        let capped =
          B.timeline
            [ B.Seq ([ B.Leaf { prim = B.Drive; speed = None; dur = None } ], Some 1.0);
              B.Leaf { prim = B.Brake; speed = None; dur = None } ]
        in
        (match capped with
        | [ d; b ] ->
            check_float "cap" 1.0 d.B.s_stop;
            check_float "brake starts at cap" 1.0 b.B.s_start
        | _ -> Alcotest.fail "expected 2 segments");
        (* body under-runs the cap: its last phase is held to the cap *)
        let extended =
          B.timeline
            [ B.Seq ([ B.Leaf { prim = B.Drive; speed = None; dur = Some 0.3 } ], Some 1.0);
              B.Leaf { prim = B.Brake; speed = None; dur = None } ]
        in
        match extended with
        | [ d; b ] ->
            check_float "extended to cap" 1.0 d.B.s_stop;
            check_float "brake after cap" 1.0 b.B.s_start
        | _ -> Alcotest.fail "expected 2 segments (extended)");
    test_case "behavior declaration collects do-phases via the evaluator"
      `Quick (fun () ->
        let scene =
          sample_scene ~seed:3
            "import testLib\n\
             behavior cut_in(delay):\n\
            \    do drive for delay\n\
            \    do brake\n\
             ego = Object at 0 @ 0\n\
             Object at 0 @ 10, with behavior cut_in(0.7), with requireVisible \
             False\n"
        in
        let o = the_object scene in
        match
          List.assoc_opt "behavior" o.Scenic_core.Scene.c_props
          |> Option.map B.of_value
        with
        | Some (Some nodes) -> (
            match B.timeline nodes with
            | [ d; b ] ->
                check_float "cap from parameter" 0.7 d.B.s_stop;
                Alcotest.(check bool) "then brake" true (b.B.s_leaf.B.l_prim = B.Brake)
            | segs -> Alcotest.failf "expected 2 segments, got %d" (List.length segs))
        | _ -> Alcotest.fail "expected a decodable behavior property");
    test_case "'do' outside a behavior body is an error" `Quick (fun () ->
        expect_error "do outside behavior"
          (function Scenic_core.Errors.Type_error _ -> true | _ -> false)
          (fun () -> compile "do drive\nego = Object\n"));
    test_case "brake_after vehicle cruises then stops in simulation" `Quick
      (fun () ->
        let scene =
          sample_scene ~seed:3
            "import testLib\n\
             ego = Object at 0 @ -40, facing 0 deg, with speed 8\n\
             Object at 0 @ -20, facing 0 deg, with speed 8, with behavior \
             brake_after(1.0), with requireVisible False\n"
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames =
          Dyn.Simulate.rollout ~controller:(fun _ -> 0.) ~duration:4. sim
        in
        (* at t=0.5 it still cruises; by t=4 it has long stopped *)
        let speed_at time =
          let fr =
            List.find
              (fun f -> Float.abs (f.Dyn.Simulate.f_time -. time) < 1e-6)
              frames
          in
          fr.Dyn.Simulate.f_speeds.(1)
        in
        check_float ~eps:1e-6 "cruising at 0.5s" 8. (speed_at 0.5);
        check_float ~eps:1e-6 "stopped at 4s" 0. (speed_at 4.0));
    test_case "drive with a target speed tracks it" `Quick (fun () ->
        let scene =
          sample_scene ~seed:3
            "import testLib\n\
             ego = Object at 0 @ -40, facing 0 deg\n\
             Object at 0 @ -20, facing 0 deg, with speed 2, with behavior \
             drive_at(12), with requireVisible False\n"
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames =
          Dyn.Simulate.rollout ~controller:(fun _ -> 0.) ~duration:8. sim
        in
        let last = List.nth frames (List.length frames - 1) in
        check_float ~eps:0.1 "reached 12 m/s" 12. last.Dyn.Simulate.f_speeds.(1));
    test_case "follow_field snaps heading to the traffic field" `Quick
      (fun () ->
        let scene =
          sample_scene ~seed:3
            "import testLib\n\
             ego = Object at 0 @ -40, facing 0 deg\n\
             Object at 10 @ -20, facing 90 deg, with speed 5, with behavior \
             follow_field, with requireVisible False\n"
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        ignore (Dyn.Simulate.rollout ~controller:(fun _ -> 0.) ~duration:0.5 sim);
        (* the north field has heading 0; one behavior tick snaps to it *)
        check_float ~eps:1e-9 "snapped" 0. sim.Dyn.Simulate.vehicles.(1).Dyn.Simulate.heading);
    test_case "vehicles without behaviors keep the legacy dynamics" `Quick
      (fun () ->
        (* byte-for-byte the same trajectory as the pre-behavior code
           path: brakeAt still works, the controller still drives *)
        let scene =
          two_car_scene ~gap:30. ~ego_speed:8. ~lead_speed:8. ~brake_at:"2.0" ()
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let frames = Dyn.Simulate.rollout ~duration:8. sim in
        Alcotest.(check bool) "no collision" true
          (Dyn.Monitor.robustness (Dyn.Monitor.no_collision ()) frames > 0.));
  ]

(* --- temporal requirements ----------------------------------------------- *)

let temporal_tests =
  [
    test_case "require always/eventually land in scenario.temporal" `Quick
      (fun () ->
        let scenario =
          compile
            "import testLib\n\
             ego = Object at 0 @ 0, with speed 8\n\
             other = Object at 0 @ 10, with requireVisible False\n\
             require always (distance to other) > 2\n\
             require eventually ego.speed > 5\n"
        in
        match scenario.Scenic_core.Scenario.temporal with
        | [ a; e ] ->
            Alcotest.(check bool) "first is always" true
              (a.Scenic_core.Temporal.t_kind = Scenic_core.Temporal.Always);
            Alcotest.(check bool) "second is eventually" true
              (e.Scenic_core.Temporal.t_kind = Scenic_core.Temporal.Eventually);
            (* temporal requirements never join the rejection loop *)
            Alcotest.(check bool) "no static requirement grew" true
              (List.for_all
                 (fun (r : Scenic_core.Scenario.requirement) ->
                   r.kind <> Scenic_core.Scenario.User
                   || not (String.length r.label > 6 && String.sub r.label 0 6 = "always"))
                 scenario.requirements)
        | l -> Alcotest.failf "expected 2 temporal reqs, got %d" (List.length l));
    test_case "random values inside a temporal require are rejected" `Quick
      (fun () ->
        expect_error "random in temporal"
          (function Scenic_core.Errors.Type_error _ -> true | _ -> false)
          (fun () ->
            compile
              "import testLib\n\
               ego = Object at 0 @ 0\n\
               require always (0, 1) > 0.5\n"));
    test_case "non-comparison temporal bodies are rejected" `Quick (fun () ->
        expect_error "non-comparison"
          (function Scenic_core.Errors.Type_error _ -> true | _ -> false)
          (fun () ->
            compile
              "import testLib\nego = Object at 0 @ 0\nrequire always ego\n"));
    test_case "of_temporal monitors distance over the rollout" `Quick
      (fun () ->
        let scenario =
          compile
            "import testLib\n\
             ego = Object at 0 @ -40, facing 0 deg, with speed 10\n\
             lead = Object at 0 @ -20, facing 0 deg, with speed 10, with \
             requireVisible False\n\
             require always (distance to lead) > 5\n"
        in
        let rng = Scenic_prob.Rng.create 3 in
        let scene =
          Scenic_sampler.Rejection.sample
            (Scenic_sampler.Rejection.create ~rng scenario)
        in
        let sim = Dyn.Simulate.of_scene ~world:north scene in
        let req = List.hd scenario.Scenic_core.Scenario.temporal in
        let f =
          Dyn.Monitor.of_temporal
            ~index_of_oid:(Dyn.Simulate.index_of_oid sim) req
        in
        let frames =
          Dyn.Simulate.rollout ~controller:(fun _ -> 0.) ~duration:2. sim
        in
        (* both cars hold 10 m/s with a 20 m gap: margin stays 20-5 = 15 *)
        check_float ~eps:0.5 "margin" 15. (Dyn.Monitor.robustness f frames));
  ]

(* --- batched falsification ----------------------------------------------- *)

let cutin_src =
  "import gtaLib\n\
   ego = EgoCar at 1.75 @ -60, facing roadDirection, with speed (11, 14)\n\
   lead = Car ahead of ego by (6, 12), with speed (3, 6), with behavior \
   brake_after((0.2, 1.0))\n\
   require always (distance to lead) > 4.5\n"

let run_batch_tests =
  [
    test_case "run_batch fingerprints are byte-identical at jobs 1/2/4" `Slow
      (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let compiled =
          Scenic_sampler.Compiled.of_source ~file:"cutin.scenic" cutin_src
        in
        let formula =
          Dyn.Falsify.auto_formula (Scenic_sampler.Compiled.scenario compiled)
        in
        let fp jobs =
          Dyn.Falsify.fingerprint
            (Dyn.Falsify.run_batch ~jobs ~n_refine:4 ~seed:5 ~rollouts:12
               ~formula compiled)
        in
        let f1 = fp 1 in
        Alcotest.(check string) "jobs 2" f1 (fp 2);
        Alcotest.(check string) "jobs 4" f1 (fp 4));
    test_case "run_batch finds the seeded counterexample" `Slow (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let compiled =
          Scenic_sampler.Compiled.of_source ~file:"cutin.scenic" cutin_src
        in
        let formula =
          Dyn.Falsify.auto_formula (Scenic_sampler.Compiled.scenario compiled)
        in
        let batch =
          Dyn.Falsify.run_batch ~jobs:2 ~n_refine:5 ~seed:5 ~rollouts:15
            ~formula compiled
        in
        Alcotest.(check bool) "found counterexamples" true
          (batch.Dyn.Falsify.b_counterexamples <> []);
        Alcotest.(check bool) "worst is a counterexample" true
          (Dyn.Falsify.b_worst_rob batch <= 0.);
        Alcotest.(check bool) "ticks counted" true (batch.Dyn.Falsify.b_ticks > 0);
        (* the worst seed's robustness is the minimum of the array *)
        Array.iter
          (fun r ->
            Alcotest.(check bool) "worst is min" true
              (r >= Dyn.Falsify.b_worst_rob batch))
          batch.Dyn.Falsify.b_robs);
    test_case "mutation scenario re-encodes behaviors and brakeAt" `Quick
      (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let scene =
          sample_scene ~seed:5
            "import gtaLib\n\
             ego = EgoCar at 1.75 @ -20, facing roadDirection\n\
             Car ahead of ego by 10, with behavior brake_after(0.5), with \
             brakeAt 2.0\n"
        in
        let src = Dyn.Falsify.mutation_scenario scene in
        let has needle =
          let n = String.length needle and h = String.length src in
          let rec go i = i + n <= h && (String.sub src i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "emits behavior" true (has "with behavior");
        Alcotest.(check bool) "emits brakeAt" true (has "with brakeAt");
        (* and the re-encoded source still compiles and samples *)
        let again = sample_scene ~seed:9 src in
        let o =
          List.find
            (fun (o : Scenic_core.Scene.cobj) ->
              List.mem_assoc "behavior" o.c_props)
            again.Scenic_core.Scene.objs
        in
        match B.of_value (List.assoc "behavior" o.c_props) with
        | Some nodes ->
            Alcotest.(check int) "two phases" 2 (List.length (B.timeline nodes))
        | None -> Alcotest.fail "re-encoded behavior does not decode");
    test_case "auto_formula falls back to no_collision" `Quick (fun () ->
        let scenario =
          compile "import testLib\nego = Object at 0 @ 0\n"
        in
        (* no temporal requirements: the fallback is a Monitor.Always *)
        match
          Dyn.Falsify.auto_formula scenario
            (Dyn.Simulate.of_scene ~world:north
               (sample_scene ~seed:3 "import testLib\nego = Object at 0 @ 0\n"))
        with
        | Dyn.Monitor.Always _ -> ()
        | _ -> Alcotest.fail "expected Always (no_collision)");
  ]

let suites =
  [
    ("dynamics.simulate", simulate_tests);
    ("dynamics.monitor", monitor_tests);
    ("dynamics.stl", stl_property_tests);
    ("dynamics.index", index_tests);
    ("dynamics.behavior", behavior_tests);
    ("dynamics.temporal", temporal_tests);
    ("dynamics.run_batch", run_batch_tests);
    ("dynamics.falsify", falsify_tests);
  ]
