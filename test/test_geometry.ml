(** Tests for the geometry substrate. *)

open Scenic_geometry

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %g, got %g" msg expected actual

let check_vec ?(eps = 1e-9) msg expected actual =
  if not (Vec.equal ~eps expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (Vec.to_string expected)
      (Vec.to_string actual)

let test_case = Alcotest.test_case

(* --- generators --------------------------------------------------------- *)

let vec_gen =
  QCheck.Gen.(
    map2 (fun x y -> Vec.make x y) (float_range (-100.) 100.)
      (float_range (-100.) 100.))

let vec_arb =
  QCheck.make ~print:Vec.to_string vec_gen

let angle_arb = QCheck.float_range (-20.) 20.

let qtest name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* --- Vec ------------------------------------------------------------------ *)

let vec_tests =
  [
    test_case "add/sub roundtrip" `Quick (fun () ->
        let a = Vec.make 3. 4. and b = Vec.make (-1.) 2. in
        check_vec "a+b-b" a (Vec.sub (Vec.add a b) b));
    test_case "norm of 3-4-5" `Quick (fun () ->
        check_float "norm" 5. (Vec.norm (Vec.make 3. 4.)));
    test_case "heading of north" `Quick (fun () ->
        check_float "north" 0. (Vec.heading_of (Vec.make 0. 1.)));
    test_case "heading of west" `Quick (fun () ->
        check_float "west" (Angle.pi /. 2.) (Vec.heading_of (Vec.make (-1.) 0.)));
    test_case "of_heading matches heading_of" `Quick (fun () ->
        List.iter
          (fun h ->
            check_float ~eps:1e-9 "roundtrip" (Angle.normalize h)
              (Vec.heading_of (Vec.of_heading h)))
          [ 0.; 0.7; -2.1; 3.1; -3.1 ]);
    test_case "rotate 90deg" `Quick (fun () ->
        check_vec "rot" (Vec.make (-1.) 0.)
          (Vec.rotate (Vec.make 0. 1.) (Angle.pi /. 2.)));
    qtest "rotation preserves norm" vec_arb (fun v ->
        feq ~eps:1e-6 (Vec.norm v) (Vec.norm (Vec.rotate v 1.234)));
    qtest "rotate then unrotate is identity"
      (QCheck.pair vec_arb angle_arb)
      (fun (v, th) -> Vec.equal ~eps:1e-6 v (Vec.rotate (Vec.rotate v th) (-.th)));
    qtest "cross antisymmetry" (QCheck.pair vec_arb vec_arb) (fun (a, b) ->
        feq ~eps:1e-6 (Vec.cross a b) (-.Vec.cross b a));
    qtest "triangle inequality" (QCheck.pair vec_arb vec_arb) (fun (a, b) ->
        Vec.norm (Vec.add a b) <= Vec.norm a +. Vec.norm b +. 1e-9);
  ]

(* --- Angle ------------------------------------------------------------------ *)

let angle_tests =
  [
    test_case "normalize wraps" `Quick (fun () ->
        check_float "2pi" 0. (Angle.normalize (2. *. Angle.pi));
        check_float ~eps:1e-9 "3pi" Angle.pi (Angle.normalize (3. *. Angle.pi));
        check_float "-pi/2" (-.(Angle.pi /. 2.)) (Angle.normalize (-.(Angle.pi /. 2.))));
    test_case "degrees roundtrip" `Quick (fun () ->
        check_float "deg" 45. (Angle.to_degrees (Angle.of_degrees 45.)));
    test_case "dist is circular" `Quick (fun () ->
        check_float ~eps:1e-9 "near wrap" (Angle.of_degrees 20.)
          (Angle.dist (Angle.of_degrees 170.) (Angle.of_degrees (-170.))));
    qtest "normalize in range" angle_arb (fun h ->
        let n = Angle.normalize h in
        n > -.Angle.pi -. 1e-9 && n <= Angle.pi +. 1e-9);
    qtest "dist symmetric" (QCheck.pair angle_arb angle_arb) (fun (a, b) ->
        feq ~eps:1e-9 (Angle.dist a b) (Angle.dist b a));
    test_case "in_interval wraparound" `Quick (fun () ->
        (* interval [170deg, 190deg] crossing pi *)
        let lo = Angle.of_degrees 170. and hi = Angle.of_degrees 190. in
        Alcotest.(check bool) "180 in" true
          (Angle.in_interval (Angle.of_degrees 180.) ~lo ~hi);
        Alcotest.(check bool) "-175 in" true
          (Angle.in_interval (Angle.of_degrees (-175.)) ~lo ~hi);
        Alcotest.(check bool) "0 out" false
          (Angle.in_interval 0. ~lo ~hi);
        Alcotest.(check bool) "165 with tol" true
          (Angle.in_interval ~tol:(Angle.of_degrees 6.) (Angle.of_degrees 165.) ~lo ~hi));
  ]

(* --- Seg ----------------------------------------------------------------- *)

let seg_tests =
  [
    test_case "distance to point" `Quick (fun () ->
        let s = Seg.make (Vec.make 0. 0.) (Vec.make 10. 0.) in
        check_float "above middle" 2. (Seg.dist_to_point s (Vec.make 5. 2.));
        check_float "beyond end" 5. (Seg.dist_to_point s (Vec.make 13. 4.)));
    test_case "intersects crossing" `Quick (fun () ->
        let s1 = Seg.make (Vec.make 0. 0.) (Vec.make 2. 2.) in
        let s2 = Seg.make (Vec.make 0. 2.) (Vec.make 2. 0.) in
        Alcotest.(check bool) "cross" true (Seg.intersects s1 s2));
    test_case "intersects parallel disjoint" `Quick (fun () ->
        let s1 = Seg.make (Vec.make 0. 0.) (Vec.make 2. 0.) in
        let s2 = Seg.make (Vec.make 0. 1.) (Vec.make 2. 1.) in
        Alcotest.(check bool) "parallel" false (Seg.intersects s1 s2));
    test_case "collinear overlap" `Quick (fun () ->
        let s1 = Seg.make (Vec.make 0. 0.) (Vec.make 2. 0.) in
        let s2 = Seg.make (Vec.make 1. 0.) (Vec.make 3. 0.) in
        Alcotest.(check bool) "overlap" true (Seg.intersects s1 s2));
    qtest "closest point is on segment"
      (QCheck.triple vec_arb vec_arb vec_arb)
      (fun (a, b, p) ->
        QCheck.assume (Vec.dist a b > 1e-6);
        let s = Seg.make a b in
        let c = Seg.closest_point s p in
        (* c must not be farther from p than either endpoint *)
        Vec.dist p c <= Vec.dist p a +. 1e-9 && Vec.dist p c <= Vec.dist p b +. 1e-9);
  ]

(* --- Polygon ---------------------------------------------------------------- *)

let square = Polygon.rectangle ~min_x:0. ~min_y:0. ~max_x:10. ~max_y:10.

let polygon_tests =
  [
    test_case "area and centroid of square" `Quick (fun () ->
        check_float "area" 100. (Polygon.area square);
        check_vec "centroid" (Vec.make 5. 5.) (Polygon.centroid square));
    test_case "reorients clockwise input" `Quick (fun () ->
        let p =
          Polygon.make
            [ Vec.make 0. 0.; Vec.make 0. 1.; Vec.make 1. 1.; Vec.make 1. 0. ]
        in
        Alcotest.(check bool) "positive area" true (Polygon.area p > 0.));
    test_case "degenerate raises" `Quick (fun () ->
        Alcotest.check_raises "too few"
          (Polygon.Degenerate "fewer than 3 vertices") (fun () ->
            ignore (Polygon.make [ Vec.zero; Vec.make 1. 1. ])));
    test_case "contains" `Quick (fun () ->
        Alcotest.(check bool) "inside" true (Polygon.contains square (Vec.make 5. 5.));
        Alcotest.(check bool) "outside" false (Polygon.contains square (Vec.make 15. 5.));
        Alcotest.(check bool) "boundary" true (Polygon.contains square (Vec.make 10. 5.)));
    test_case "intersection of overlapping squares" `Quick (fun () ->
        let other = Polygon.rectangle ~min_x:5. ~min_y:5. ~max_x:15. ~max_y:15. in
        match Polygon.intersect square other with
        | Some p -> check_float ~eps:1e-6 "area" 25. (Polygon.area p)
        | None -> Alcotest.fail "expected overlap");
    test_case "intersection of disjoint squares" `Quick (fun () ->
        let other = Polygon.rectangle ~min_x:20. ~min_y:20. ~max_x:30. ~max_y:30. in
        Alcotest.(check bool) "none" true (Polygon.intersect square other = None));
    test_case "erode square" `Quick (fun () ->
        match Polygon.erode square 2. with
        | Some p -> check_float ~eps:1e-6 "area" 36. (Polygon.area p)
        | None -> Alcotest.fail "erosion vanished");
    test_case "erode to nothing" `Quick (fun () ->
        Alcotest.(check bool) "vanishes" true (Polygon.erode square 6. = None));
    test_case "dilate square" `Quick (fun () ->
        let p = Polygon.dilate square 1. in
        check_float ~eps:1e-6 "area" 144. (Polygon.area p));
    test_case "min_width of rectangle" `Quick (fun () ->
        let r = Polygon.rectangle ~min_x:0. ~min_y:0. ~max_x:3. ~max_y:20. in
        check_float ~eps:1e-6 "width" 3. (Polygon.min_width r));
    test_case "clip_segment" `Quick (fun () ->
        let s = Seg.make (Vec.make (-5.) 5.) (Vec.make 15. 5.) in
        match Polygon.clip_segment square s with
        | Some (t0, t1) ->
            check_float ~eps:1e-9 "t0" 0.25 t0;
            check_float ~eps:1e-9 "t1" 0.75 t1
        | None -> Alcotest.fail "expected clip");
    test_case "clip_segment outside" `Quick (fun () ->
        let s = Seg.make (Vec.make (-5.) 20.) (Vec.make 15. 20.) in
        Alcotest.(check bool) "none" true (Polygon.clip_segment square s = None));
    test_case "convex hull of square + interior points" `Quick (fun () ->
        let pts =
          [
            Vec.make 0. 0.; Vec.make 10. 0.; Vec.make 10. 10.; Vec.make 0. 10.;
            Vec.make 5. 5.; Vec.make 2. 7.;
          ]
        in
        let h = Polygon.convex_hull pts in
        check_float ~eps:1e-9 "area" 100. (Polygon.area h);
        Alcotest.(check int) "vertices" 4 (Polygon.num_vertices h));
    qtest "hull contains its points"
      (QCheck.list_of_size (QCheck.Gen.int_range 3 12) vec_arb)
      (fun pts ->
        match Polygon.convex_hull pts with
        | h -> List.for_all (fun p -> Polygon.contains h p) pts
        | exception Polygon.Degenerate _ -> true);
    qtest "sample_uniform stays inside"
      (QCheck.pair (QCheck.int_range 0 10000) QCheck.unit)
      (fun (seed, ()) ->
        let rng = Scenic_prob.Rng.create seed in
        let tri = Polygon.make [ Vec.zero; Vec.make 8. 1.; Vec.make 3. 7. ] in
        let p = Polygon.sample_uniform tri ~urand:(fun () -> Scenic_prob.Rng.float rng) in
        Polygon.contains tri p);
    qtest "dilation soundness: superset of the Minkowski sum"
      (QCheck.pair vec_arb (QCheck.float_range 0.2 5.))
      (fun (p, delta) ->
        (* any point within delta of the square must be in its dilation
           (miter joins give a superset of the true Minkowski sum) *)
        let d = Polygon.dilate square delta in
        let dist = Polygon.signed_dist square p in
        dist < -.delta +. 1e-6 || Polygon.contains d p);
    qtest "erosion soundness: eroded point's disc fits"
      (QCheck.pair vec_arb (QCheck.float_range 0.2 3.))
      (fun (p, r) ->
        match Polygon.erode square r with
        | None -> true
        | Some eroded ->
            (not (Polygon.contains eroded p))
            || List.for_all
                 (fun k ->
                   let th = float_of_int k *. Angle.pi /. 8. in
                   Polygon.contains square
                     (Vec.add p (Vec.scale r (Vec.of_heading th))))
                 (List.init 16 Fun.id));
  ]

(* --- Polyset ---------------------------------------------------------------- *)

let two_lanes =
  (* two adjacent 4x20 lanes: union is an 8x20 road *)
  Polyset.make
    [
      Polygon.rectangle ~min_x:0. ~min_y:0. ~max_x:4. ~max_y:20.;
      Polygon.rectangle ~min_x:4. ~min_y:0. ~max_x:8. ~max_y:20.;
    ]

let polyset_tests =
  [
    test_case "area sums" `Quick (fun () ->
        check_float ~eps:1e-6 "area" 160. (Polyset.area two_lanes));
    test_case "union boundary excludes shared edge" `Quick (fun () ->
        let boundary = Polyset.union_boundary two_lanes in
        (* the seam x=4 must not contribute boundary segments *)
        let on_seam =
          List.filter
            (fun s ->
              feq ~eps:1e-6 (Vec.x (Seg.a s)) 4. && feq ~eps:1e-6 (Vec.x (Seg.b s)) 4.)
            boundary
        in
        let seam_len = List.fold_left (fun acc s -> acc +. Seg.length s) 0. on_seam in
        check_float ~eps:1e-6 "seam length" 0. seam_len;
        (* total boundary length = perimeter of the 8x20 rectangle *)
        let total = List.fold_left (fun acc s -> acc +. Seg.length s) 0. boundary in
        check_float ~eps:1e-6 "perimeter" 56. total);
    test_case "erode_pred sees through the seam" `Quick (fun () ->
        let pred = Polyset.erode_pred two_lanes 1.5 in
        (* a point on the seam, deep inside the union: 1.5 from nothing *)
        Alcotest.(check bool) "center ok" true (pred (Vec.make 4. 10.));
        Alcotest.(check bool) "near left edge" false (pred (Vec.make 0.5 10.));
        Alcotest.(check bool) "near top" false (pred (Vec.make 4. 19.));
        Alcotest.(check bool) "outside" false (pred (Vec.make 12. 10.)));
    qtest "erode_pred soundness on the union"
      (QCheck.pair vec_arb (QCheck.float_range 0.2 2.))
      (fun (p, r) ->
        let pred = Polyset.erode_pred two_lanes r in
        (not (pred p))
        || List.for_all
             (fun k ->
               let th = float_of_int k *. Angle.pi /. 8. in
               Polyset.contains two_lanes
                 (Vec.add p (Vec.scale (r *. 0.999) (Vec.of_heading th))))
             (List.init 16 Fun.id));
    test_case "sample_uniform covers both lanes" `Quick (fun () ->
        let rng = Scenic_prob.Rng.create 1 in
        let left = ref 0 in
        for _ = 1 to 1000 do
          let p = Polyset.sample_uniform two_lanes ~urand:(fun () -> Scenic_prob.Rng.float rng) in
          if Vec.x p < 4. then incr left
        done;
        Alcotest.(check bool) "balanced" true (!left > 400 && !left < 600));
  ]

(* --- Rect ------------------------------------------------------------------ *)

let rect_tests =
  [
    test_case "corners of axis-aligned box" `Quick (fun () ->
        let r = Rect.make ~center:(Vec.make 1. 2.) ~heading:0. ~width:2. ~height:4. in
        let cs = Rect.corners r in
        Alcotest.(check int) "4 corners" 4 (List.length cs);
        Alcotest.(check bool) "front right" true
          (List.exists (Vec.equal ~eps:1e-9 (Vec.make 2. 4.)) cs));
    test_case "heading rotates the box" `Quick (fun () ->
        (* heading pi/2 = West: the 'front' edge points West *)
        let r = Rect.make ~center:Vec.zero ~heading:(Angle.pi /. 2.) ~width:2. ~height:4. in
        Alcotest.(check bool) "contains west point" true
          (Rect.contains r (Vec.make (-1.9) 0.));
        Alcotest.(check bool) "not north" false (Rect.contains r (Vec.make 0. 1.9)));
    test_case "intersects SAT" `Quick (fun () ->
        let a = Rect.make ~center:Vec.zero ~heading:0. ~width:2. ~height:2. in
        let b = Rect.make ~center:(Vec.make 1.5 0.) ~heading:(Angle.pi /. 4.) ~width:2. ~height:2. in
        let c = Rect.make ~center:(Vec.make 4. 0.) ~heading:0. ~width:2. ~height:2. in
        Alcotest.(check bool) "ab" true (Rect.intersects a b);
        Alcotest.(check bool) "ac" false (Rect.intersects a c));
    qtest "intersects is symmetric"
      (QCheck.pair (QCheck.pair vec_arb angle_arb) (QCheck.pair vec_arb angle_arb))
      (fun ((c1, h1), (c2, h2)) ->
        let a = Rect.make ~center:c1 ~heading:h1 ~width:2. ~height:4. in
        let b = Rect.make ~center:c2 ~heading:h2 ~width:3. ~height:1. in
        Rect.intersects a b = Rect.intersects b a);
    test_case "inradius / circumradius" `Quick (fun () ->
        let r = Rect.make ~center:Vec.zero ~heading:0.3 ~width:2. ~height:4. in
        check_float "inradius" 1. (Rect.inradius r);
        check_float ~eps:1e-9 "circumradius" (sqrt 5.) (Rect.circumradius r));
  ]

(* --- Region / Vectorfield / Visibility ------------------------------------- *)

let region_tests =
  [
    test_case "region areas are analytic where defined" `Quick (fun () ->
        let feq = feq ~eps:1e-9 in
        (match Region.area (Region.circle Vec.zero 3.) with
        | Some a -> Alcotest.(check bool) "circle" true (feq a (Angle.pi *. 9.))
        | None -> Alcotest.fail "circle area");
        (match
           Region.area
             (Region.sector ~center:Vec.zero ~radius:2. ~heading:0.
                ~angle:Angle.pi)
         with
        | Some a -> Alcotest.(check bool) "sector" true (feq a (2. *. Angle.pi))
        | None -> Alcotest.fail "sector area");
        (match Region.area (Region.of_polygon square) with
        | Some a -> Alcotest.(check bool) "polyset" true (feq a 100.)
        | None -> Alcotest.fail "polyset area");
        Alcotest.(check bool) "intersection unknown" true
          (Region.area
             (Region.intersect (Region.of_polygon square)
                (Region.circle Vec.zero 5.))
          = None));
    test_case "circle contains and samples" `Quick (fun () ->
        let r = Region.circle (Vec.make 1. 1.) 5. in
        Alcotest.(check bool) "in" true (Region.contains r (Vec.make 4. 1.));
        Alcotest.(check bool) "out" false (Region.contains r (Vec.make 7. 1.));
        let rng = Scenic_prob.Rng.create 3 in
        for _ = 1 to 200 do
          let p = Region.sample r ~urand:(fun () -> Scenic_prob.Rng.float rng) in
          Alcotest.(check bool) "sampled in" true (Region.contains r p)
        done);
    test_case "sector membership" `Quick (fun () ->
        let s = Region.sector ~center:Vec.zero ~radius:10. ~heading:0. ~angle:(Angle.of_degrees 60.) in
        Alcotest.(check bool) "ahead" true (Region.contains s (Vec.make 0. 5.));
        Alcotest.(check bool) "30deg edge" true
          (Region.contains s (Vec.scale 5. (Vec.of_heading (Angle.of_degrees 29.))));
        Alcotest.(check bool) "45deg out" false
          (Region.contains s (Vec.scale 5. (Vec.of_heading (Angle.of_degrees 45.))));
        Alcotest.(check bool) "too far" false (Region.contains s (Vec.make 0. 11.)));
    test_case "everywhere cannot be sampled" `Quick (fun () ->
        let rng = Scenic_prob.Rng.create 3 in
        match Region.sample Region.everywhere ~urand:(fun () -> Scenic_prob.Rng.float rng) with
        | exception Region.Unbounded _ -> ()
        | _ -> Alcotest.fail "expected Unbounded");
    test_case "filtered sampling respects predicate" `Quick (fun () ->
        let base = Region.of_polygon square in
        let left = Region.filtered ~fname:"left" base (fun p -> Vec.x p < 5.) in
        let rng = Scenic_prob.Rng.create 5 in
        for _ = 1 to 200 do
          let p = Region.sample left ~urand:(fun () -> Scenic_prob.Rng.float rng) in
          Alcotest.(check bool) "left half" true (Vec.x p < 5.)
        done);
    test_case "empty filter raises" `Quick (fun () ->
        let base = Region.of_polygon square in
        let none = Region.filtered ~fname:"none" base (fun _ -> false) in
        let rng = Scenic_prob.Rng.create 5 in
        match Region.sample none ~urand:(fun () -> Scenic_prob.Rng.float rng) with
        | exception Region.Empty_region _ -> ()
        | _ -> Alcotest.fail "expected Empty_region");
    test_case "replace_polyset digs through filters" `Quick (fun () ->
        let base = Region.of_polyset two_lanes in
        let filtered = Region.filtered ~fname:"f" base (fun _ -> true) in
        let small = Polyset.make [ square ] in
        let replaced = Region.replace_polyset filtered small in
        match Region.polyset replaced with
        | Some ps -> check_float ~eps:1e-6 "area" 100. (Polyset.area ps)
        | None -> Alcotest.fail "no polyset");
    test_case "vectorfield piecewise + follow" `Quick (fun () ->
        let f =
          Vectorfield.piecewise ~name:"f"
            [ (square, 0.); (Polygon.rectangle ~min_x:0. ~min_y:10. ~max_x:10. ~max_y:20., Angle.pi /. 2.) ]
        in
        check_float "south part" 0. (Vectorfield.at f (Vec.make 5. 5.));
        check_float "north part" (Angle.pi /. 2.) (Vectorfield.at f (Vec.make 5. 15.));
        (* follow north for 4m from (5,5): stays in the 0-heading piece *)
        let p = Vectorfield.follow f ~from:(Vec.make 5. 5.) ~dist:4. in
        check_vec ~eps:1e-9 "follow" (Vec.make 5. 9.) p);
    test_case "visibility: point vs oriented viewer" `Quick (fun () ->
        let v =
          Visibility.viewer ~heading:0. ~view_angle:(Angle.of_degrees 80.)
            ~position:Vec.zero ~view_distance:30. ()
        in
        Alcotest.(check bool) "ahead" true (Visibility.sees_point v (Vec.make 0. 10.));
        Alcotest.(check bool) "behind" false (Visibility.sees_point v (Vec.make 0. (-10.)));
        Alcotest.(check bool) "too far" false (Visibility.sees_point v (Vec.make 0. 31.)));
    test_case "visibility: box partially in cone" `Quick (fun () ->
        let v =
          Visibility.viewer ~heading:0. ~view_angle:(Angle.of_degrees 40.)
            ~position:Vec.zero ~view_distance:30. ()
        in
        (* box center outside the cone (atan(5/12) ≈ 22.6° > 20°) but
           its near-left corner (2, 13) pokes in at ≈ 8.7° *)
        let box = Rect.make ~center:(Vec.make 5. 12.) ~heading:0. ~width:6. ~height:2. in
        Alcotest.(check bool) "corner visible" true (Visibility.sees_box v box);
        let far_box = Rect.make ~center:(Vec.make 30. 10.) ~heading:0. ~width:2. ~height:2. in
        Alcotest.(check bool) "way off" false (Visibility.sees_box v far_box));
  ]

(* --- Spatial index vs the linear-scan reference ---------------------------- *)

(* Random convex polygons (hulls of random point clouds around a random
   center), assembled into random polysets.  Kept here as the test-only
   oracle inputs for the grid-indexed fast paths. *)
let convex_poly_gen =
  QCheck.Gen.(
    map2
      (fun (cx, cy) pts ->
        let pts = List.map (fun (x, y) -> Vec.make (cx +. x) (cy +. y)) pts in
        match Polygon.convex_hull pts with
        | h -> Some h
        | exception Polygon.Degenerate _ -> None)
      (pair (float_range (-40.) 40.) (float_range (-40.) 40.))
      (list_size (int_range 3 10)
         (pair (float_range (-8.) 8.) (float_range (-8.) 8.))))

let polyset_gen =
  QCheck.Gen.map
    (fun polys -> Polyset.make (List.filter_map Fun.id polys))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 12) convex_poly_gen)

let polyset_arb =
  QCheck.make ~print:(Fmt.to_to_string Polyset.pp) polyset_gen

(* Query points that exercise inside, boundary and far-outside cases:
   the raw random point plus every member's centroid and vertices. *)
let query_points ps p =
  p
  :: List.concat_map
       (fun poly -> Polygon.centroid poly :: Polygon.vertices poly)
       (Polyset.polygons ps)

(* The linear scans the index replaced, kept verbatim as oracles. *)
let contains_oracle ps p =
  List.exists (fun poly -> Polygon.contains poly p) (Polyset.polygons ps)

let dist_oracle boundary p =
  List.fold_left (fun acc s -> Float.min acc (Seg.dist_to_point s p)) infinity
    boundary

(* The pre-index Polyset + Polygon sampler, reimplemented verbatim:
   linear cumulative-area walk over the members (fallthrough to index
   0), then a per-draw fan triangulation with a linear walk
   (fallthrough to the last triangle).  The accelerated sampler must
   consume the same number of urand draws and return bit-identical
   points. *)
let reference_sample ps ~urand =
  let polys = Array.of_list (Polyset.polygons ps) in
  let areas = Array.map Polygon.area polys in
  let total = Array.fold_left ( +. ) 0. areas in
  let r = urand () *. total in
  let idx = ref 0 and acc = ref 0. in
  (try
     Array.iteri
       (fun i a ->
         acc := !acc +. a;
         if r <= !acc then begin
           idx := i;
           raise Exit
         end)
       areas
   with Exit -> ());
  let verts = Array.of_list (Polygon.vertices polys.(!idx)) in
  let n = Array.length verts in
  let v0 = verts.(0) in
  let tris = List.init (n - 2) (fun i -> (v0, verts.(i + 1), verts.(i + 2))) in
  let areas =
    List.map
      (fun (a, b, c) -> Float.abs (Vec.cross (Vec.sub b a) (Vec.sub c a)) /. 2.)
      tris
  in
  let total = List.fold_left ( +. ) 0. areas in
  let r = urand () *. total in
  let rec pick tris areas acc =
    match (tris, areas) with
    | [ t ], _ -> t
    | t :: ts, a :: as_ -> if r <= acc +. a then t else pick ts as_ (acc +. a)
    | _ -> assert false
  in
  let a, b, c = pick tris areas 0. in
  let u = urand () and v = urand () in
  let u, v = if u +. v > 1. then (1. -. u, 1. -. v) else (u, v) in
  Vec.add a (Vec.add (Vec.scale u (Vec.sub b a)) (Vec.scale v (Vec.sub c a)))

let vec_identical p q = Vec.x p = Vec.x q && Vec.y p = Vec.y q

let spatial_index_tests =
  [
    qtest "indexed contains = linear scan" ~count:300
      (QCheck.pair polyset_arb vec_arb)
      (fun (ps, p) ->
        List.for_all
          (fun q -> Polyset.contains ps q = contains_oracle ps q)
          (query_points ps p));
    qtest "indexed boundary distance = linear fold" ~count:150
      (QCheck.pair polyset_arb vec_arb)
      (fun (ps, p) ->
        let boundary = Polyset.union_boundary ps in
        let dist = Polyset.dist_to_union_boundary ps in
        List.for_all
          (fun q ->
            let fast = dist q and slow = dist_oracle boundary q in
            fast = slow || (Float.is_nan fast && Float.is_nan slow))
          (query_points ps p));
    qtest "indexed vector-field lookup = find_opt scan" ~count:300
      (QCheck.pair polyset_arb vec_arb)
      (fun (ps, p) ->
        (* headings distinct per piece, so first-match order is
           observable through the looked-up value *)
        let pieces =
          List.mapi (fun i poly -> (poly, float_of_int i +. 1.))
            (Polyset.polygons ps)
        in
        let f = Vectorfield.piecewise ~name:"t" ~default:(-1.) pieces in
        let oracle q =
          match
            List.find_opt (fun (poly, _) -> Polygon.contains poly q) pieces
          with
          | Some (_, h) -> h
          | None -> -1.
        in
        List.for_all
          (fun q -> Vectorfield.at f q = oracle q)
          (query_points ps p));
    qtest "table-driven sampling = linear-scan sampling, bit for bit"
      ~count:300
      (QCheck.pair polyset_arb (QCheck.int_range 0 100_000))
      (fun (ps, seed) ->
        QCheck.assume (not (Polyset.is_empty ps));
        let rng_a = Scenic_prob.Rng.create seed in
        let rng_b = Scenic_prob.Rng.create seed in
        List.for_all Fun.id
          (List.init 10 (fun _ ->
               let fast =
                 Polyset.sample_uniform ps ~urand:(fun () ->
                     Scenic_prob.Rng.float rng_a)
               in
               let slow =
                 reference_sample ps ~urand:(fun () ->
                     Scenic_prob.Rng.float rng_b)
               in
               vec_identical fast slow)));
    (* expanding-ring nearest-distance: exactness on degenerate inputs,
       where the ring bound ("every unvisited cell is at least
       ring·cell_extent away") is easiest to get wrong *)
    test_case "nearest_dist on an empty set is infinity" `Quick (fun () ->
        let t = Spatial_index.build_segs [||] in
        Alcotest.(check bool)
          "infinite" true
          (Spatial_index.nearest_dist t (Vec.make 3. 4.) = infinity));
    test_case "nearest_dist with one segment = Seg.dist_to_point" `Quick
      (fun () ->
        let s = Seg.make (Vec.make 0. 0.) (Vec.make 10. 0.) in
        let t = Spatial_index.build_segs [| s |] in
        List.iter
          (fun p ->
            check_float ~eps:1e-12
              (Printf.sprintf "query (%g,%g)" (Vec.x p) (Vec.y p))
              (Seg.dist_to_point s p)
              (Spatial_index.nearest_dist t p))
          [
            Vec.make 5. 0.;
            (* on the segment *)
            Vec.make 5. 3.;
            (* above the interior *)
            Vec.make (-4.) (-3.);
            (* beyond endpoint a *)
            Vec.make 14. 3.;
            (* beyond endpoint b *)
          ]);
    test_case "nearest_dist with all segments in one cell = linear oracle"
      `Quick (fun () ->
        (* a dense cluster inside a 1x1 area: the grid degenerates to
           very few cells, so the ring search terminates on ring 0/1 *)
        let segs =
          Array.init 16 (fun i ->
              let x = 0.05 *. float_of_int i in
              Seg.make (Vec.make x 0.) (Vec.make (x +. 0.03) (0.5 +. x)))
        in
        let t = Spatial_index.build_segs segs in
        let oracle p =
          Array.fold_left
            (fun acc s -> Float.min acc (Seg.dist_to_point s p))
            infinity segs
        in
        List.iter
          (fun p ->
            check_float ~eps:1e-12 "cluster query" (oracle p)
              (Spatial_index.nearest_dist t p))
          [ Vec.make 0.4 0.2; Vec.make 0. 0.; Vec.make 1. 1.; Vec.make 0.7 (-0.1) ]);
    test_case "nearest_dist from far outside the grid is exact" `Quick
      (fun () ->
        let segs =
          Array.init 10 (fun i ->
              let x = float_of_int i in
              Seg.make (Vec.make x 0.) (Vec.make (x +. 0.8) 1.))
        in
        let t = Spatial_index.build_segs segs in
        let oracle p =
          Array.fold_left
            (fun acc s -> Float.min acc (Seg.dist_to_point s p))
            infinity segs
        in
        (* queries well outside the indexed bounding box, in each
           direction: the clamped start cell must not truncate the ring *)
        List.iter
          (fun p ->
            check_float ~eps:1e-12 "outside query" (oracle p)
              (Spatial_index.nearest_dist t p))
          [
            Vec.make (-500.) 0.5;
            Vec.make 500. 0.5;
            Vec.make 5. 300.;
            Vec.make (-40.) (-40.);
          ]);
    test_case "index stats are exposed" `Quick (fun () ->
        Spatial_index.reset_global ();
        let ps =
          Polyset.make
            (List.init 20 (fun i ->
                 let x = 3. *. float_of_int i in
                 Polygon.rectangle ~min_x:x ~min_y:0. ~max_x:(x +. 2.)
                   ~max_y:2.))
        in
        ignore (Polyset.contains ps (Vec.make 1. 1.));
        let s = Spatial_index.global () in
        Alcotest.(check bool) "a build was counted" true (s.builds >= 1);
        Alcotest.(check bool) "cells allocated" true (s.cells > 0);
        Alcotest.(check bool) "query counted" true (s.queries >= 1);
        Alcotest.(check bool) "occupancy sane" true (s.max_occupancy >= 1));
  ]

let suites =
  [
    ("geometry.vec", vec_tests);
    ("geometry.angle", angle_tests);
    ("geometry.seg", seg_tests);
    ("geometry.polygon", polygon_tests);
    ("geometry.polyset", polyset_tests);
    ("geometry.rect", rect_tests);
    ("geometry.region", region_tests);
    ("geometry.spatial-index", spatial_index_tests);
  ]
