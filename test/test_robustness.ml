(** Tests for the resilient sampling runtime: budgets, rejection
    diagnostics, graceful degradation, and RNG fault injection.  These
    exercise the failure paths the fault-injection harness
    ({!Scenic_harness.Robustness}) exists to force. *)

open Helpers
module C = Scenic_core
module G = Scenic_geometry
module P = Scenic_prob
module S = Scenic_sampler
module R = Scenic_harness.Robustness

let test_case = Alcotest.test_case
let base = "import testLib\nego = Object at 0 @ 0\n"
let unsat = base ^ "x = (0, 1)\nObject at 5 @ 5\nrequire x > 2\n"

(* --- budgets ------------------------------------------------------------- *)

let budget_tests =
  [
    test_case "iteration cap yields a structured exhaustion" `Quick (fun () ->
        let e = R.exhaust ~max_iters:50 ~seed:1 unsat in
        (match e.S.Rejection.reason with
        | S.Budget.Iteration_limit n -> Alcotest.(check int) "cap" 50 n
        | S.Budget.Deadline _ -> Alcotest.fail "expected iteration limit");
        Alcotest.(check int) "used" 50 e.S.Rejection.used;
        Alcotest.(check int) "diagnosed" 50
          (S.Diagnose.total e.S.Rejection.diagnosis));
    test_case "wall-clock deadline fires under a fake clock" `Quick (fun () ->
        (* the clock advances 0.5 s per consultation and is consulted
           every [clock_stride] iterations, so a 2 s deadline fires on
           the fifth consultation — within 5 strides regardless of real
           time *)
        let clock = R.ticking_clock ~step:0.5 () in
        let e =
          R.exhaust ~max_iters:1_000_000 ~timeout:2.0 ~clock ~seed:1 unsat
        in
        (match e.S.Rejection.reason with
        | S.Budget.Deadline elapsed ->
            Alcotest.(check bool) "elapsed past deadline" true (elapsed > 2.0)
        | S.Budget.Iteration_limit _ -> Alcotest.fail "expected deadline");
        Alcotest.(check bool) "stopped early" true
          (e.S.Rejection.used < 5 * S.Budget.clock_stride));
    test_case "clock consultations are strided" `Quick (fun () ->
        (* 200 iterations under a timeout that never fires: the clock
           is read once at [start] and then only on iterations 1, 65,
           129, 193 — 5 reads instead of the former 201 *)
        let reads = ref 0 in
        let clock () =
          incr reads;
          0.
        in
        let e = R.exhaust ~max_iters:200 ~timeout:10. ~clock ~seed:1 unsat in
        (match e.S.Rejection.reason with
        | S.Budget.Iteration_limit n -> Alcotest.(check int) "cap" 200 n
        | S.Budget.Deadline _ -> Alcotest.fail "expected iteration limit");
        Alcotest.(check int) "clock reads"
          (1 + ((200 + S.Budget.clock_stride - 1) / S.Budget.clock_stride))
          !reads);
    test_case "deadline overshoot is bounded by the stride" `Quick (fun () ->
        (* pins the documented bound: consultations happen before
           iterations 1, 1 + stride, 1 + 2*stride, ..., so a deadline
           expiring right after the iteration-1 consultation lets
           exactly [max_deadline_overshoot] = stride - 1 further
           iterations run before detection.  The fake clock reads 0 at
           [start] and at iteration 1, then jumps past the deadline. *)
        Alcotest.(check int) "bound is stride - 1"
          (S.Budget.clock_stride - 1)
          S.Budget.max_deadline_overshoot;
        let reads = ref 0 in
        let clock () =
          incr reads;
          if !reads <= 2 then 0. else 10.
        in
        let e =
          R.exhaust ~max_iters:1_000_000 ~timeout:2.0 ~clock ~seed:1 unsat
        in
        (match e.S.Rejection.reason with
        | S.Budget.Deadline elapsed ->
            Alcotest.(check bool) "elapsed reflects the late read" true
              (elapsed > 2.0)
        | S.Budget.Iteration_limit _ -> Alcotest.fail "expected deadline");
        (* iteration 1 ran pre-expiry; iterations 2 .. stride are the
           overshoot; detection fires before iteration stride + 1 *)
        Alcotest.(check int) "iterations run past the deadline"
          (1 + S.Budget.max_deadline_overshoot)
          e.S.Rejection.used;
        Alcotest.(check int) "exactly three clock reads" 3 !reads);
    test_case "adaptive stride tightens near the deadline" `Quick (fun () ->
        (* the clock advances exactly 0.125 s per read (binary-exact,
           so the arithmetic below has no rounding), and the timeout is
           0.5 s: after the iteration-1 consultation measures 0.125 s
           per iteration, the aim-for-half-the-remaining-budget rule
           clamps every subsequent stride to 1, so expiry is detected
           on the very next consultation after it happens — 4
           iterations in, not up to [clock_stride] = 64 later.
           Consultation schedule: reads at start (0.125) and before
           iterations 1..5 (0.250 .. 0.750); remaining time hits
           -0.125 on the sixth read, stopping iteration 5. *)
        let reads = ref 0 in
        let clock () =
          incr reads;
          0.125 *. float_of_int !reads
        in
        let e =
          R.exhaust ~max_iters:1_000_000 ~timeout:0.5 ~clock ~seed:1 unsat
        in
        (match e.S.Rejection.reason with
        | S.Budget.Deadline elapsed ->
            Alcotest.(check (float 1e-9)) "elapsed at detection" 0.625 elapsed
        | S.Budget.Iteration_limit _ -> Alcotest.fail "expected deadline");
        Alcotest.(check int) "stopped within a handful of iterations" 4
          e.S.Rejection.used;
        Alcotest.(check int) "one read per shrunk stride" 6 !reads);
    test_case "deadline unchanged at iteration 1" `Quick (fun () ->
        (* the stride always checks iteration 1, so an already-expired
           deadline still stops the very first iteration *)
        let clock = R.ticking_clock ~step:10. () in
        let e =
          R.exhaust ~max_iters:1_000_000 ~timeout:2.0 ~clock ~seed:1 unsat
        in
        (match e.S.Rejection.reason with
        | S.Budget.Deadline _ -> ()
        | S.Budget.Iteration_limit _ -> Alcotest.fail "expected deadline");
        Alcotest.(check int) "no iterations ran" 0 e.S.Rejection.used);
    test_case "compat wrapper still raises Zero_probability" `Quick (fun () ->
        expect_error "zero prob"
          (function C.Errors.Zero_probability -> true | _ -> false)
          (fun () -> sample_scene ~max_iters:50 unsat));
    test_case "budget rejects nonsense parameters" `Quick (fun () ->
        Alcotest.check_raises "zero iters"
          (Invalid_argument "Budget.create: max_iters must be positive")
          (fun () -> ignore (S.Budget.create ~max_iters:0 ()));
        Alcotest.check_raises "negative timeout"
          (Invalid_argument "Budget.create: timeout must be positive")
          (fun () -> ignore (S.Budget.create ~timeout:(-1.) ())));
  ]

(* --- diagnosis ----------------------------------------------------------- *)

let diagnosis_tests =
  [
    test_case "counters sum to total iterations across samples" `Quick
      (fun () ->
        let src = base ^ "x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x > 8\n" in
        let scenario = compile src in
        let rng = P.Rng.create 7 in
        let r = S.Rejection.create ~rng scenario in
        for _ = 1 to 10 do
          ignore (S.Rejection.sample r)
        done;
        let d = S.Rejection.diagnosis r in
        Alcotest.(check int) "accepted" 10 (S.Diagnose.accepted d);
        let attributed =
          Array.fold_left ( + ) 0 d.S.Diagnose.violations
          + List.fold_left
              (fun acc (_, n) -> acc + n)
              0
              (S.Diagnose.local_rejections d)
          + S.Diagnose.accepted d
        in
        Alcotest.(check int) "sum to total" (S.Diagnose.total d) attributed;
        Alcotest.(check bool) "some rejections" true (S.Diagnose.rejected d > 0));
    test_case "least-satisfiable requirement carries its source span" `Quick
      (fun () ->
        let e = R.exhaust ~max_iters:100 ~seed:3 unsat in
        match S.Diagnose.least_satisfiable e.S.Rejection.diagnosis with
        | None -> Alcotest.fail "expected a least-satisfiable requirement"
        | Some (_, req) ->
            Alcotest.(check bool) "user requirement" true
              (req.C.Scenario.kind = C.Scenario.User);
            Alcotest.(check string) "span file" "<exhaust>"
              req.C.Scenario.span.Scenic_lang.Loc.file;
            Alcotest.(check int) "span line" 5
              req.C.Scenario.span.Scenic_lang.Loc.start.Scenic_lang.Loc.line);
    test_case "local rejection ties break on the message" `Quick (fun () ->
        (* equal counts used to surface in Hashtbl bucket order; the
           sort now tie-breaks on the message, so the report is stable
           regardless of insertion history *)
        let d = S.Diagnose.create (compile base) in
        List.iter
          (fun msg -> S.Diagnose.record d (S.Diagnose.Local msg))
          [ "zeta"; "alpha"; "mid"; "alpha" ];
        Alcotest.(check (list (pair string int)))
          "count desc, then message asc"
          [ ("alpha", 2); ("mid", 1); ("zeta", 1) ]
          (S.Diagnose.local_rejections d));
    test_case "merge sums counters orderlessly" `Quick (fun () ->
        let scenario = compile unsat in
        let run seed iters =
          let rng = P.Rng.create seed in
          let r = S.Rejection.create ~max_iters:iters ~rng scenario in
          ignore (S.Rejection.sample_outcome r);
          S.Rejection.diagnosis r
        in
        let a = run 1 30 and b = run 2 50 in
        let ab = S.Diagnose.merge a b and ba = S.Diagnose.merge b a in
        Alcotest.(check int) "total" 80 (S.Diagnose.total ab);
        Alcotest.(check int) "commutative total" (S.Diagnose.total ab)
          (S.Diagnose.total ba);
        Alcotest.(check (array int))
          "violations sum"
          (Array.map2 ( + ) a.S.Diagnose.violations b.S.Diagnose.violations)
          ab.S.Diagnose.violations;
        Alcotest.(check int) "sources untouched" 30 (S.Diagnose.total a));
    test_case "merge rejects mismatched requirement sets" `Quick (fun () ->
        let a = S.Diagnose.create (compile unsat) in
        let b = S.Diagnose.create (compile base) in
        Alcotest.check_raises "mismatch"
          (Invalid_argument "Diagnose.merge_into: mismatched requirement sets")
          (fun () -> ignore (S.Diagnose.merge a b)));
    test_case "report names the blocking requirement" `Quick (fun () ->
        let e = R.exhaust ~max_iters:40 ~seed:3 unsat in
        let report = S.Diagnose.report e.S.Rejection.diagnosis in
        let contains hay needle =
          let lh = String.length hay and ln = String.length needle in
          let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "mentions requirement" true
          (contains report "x > 2");
        Alcotest.(check bool) "mentions span" true (contains report "<exhaust>"));
  ]

(* --- graceful degradation ------------------------------------------------ *)

let degradation_tests =
  [
    test_case "degenerate pruning falls back to the unpruned scenario" `Quick
      (fun () ->
        let scenario = compile (base ^ "Object on arena\n") in
        let sampler =
          S.Sampler.create ~prune_fn:R.degenerate_prune ~seed:11 scenario
        in
        Alcotest.(check bool) "degradation detected" true
          (S.Sampler.degraded sampler <> []);
        (* the clobbered regions were restored: sampling succeeds and
           stays inside the original arena *)
        let scene = S.Sampler.sample sampler in
        let p = C.Scene.position (the_object scene) in
        Alcotest.(check bool) "inside arena" true
          (Float.abs (G.Vec.x p) <= 50. && Float.abs (G.Vec.y p) <= 50.));
    test_case "healthy pruning does not trigger the fallback" `Quick (fun () ->
        Scenic_worlds.Scenic_worlds_init.init ();
        let scenario = compile "import gtaLib\nego = Car\nCar visible\n" in
        let sampler = S.Sampler.create ~seed:11 scenario in
        Alcotest.(check bool) "not degraded" true
          (S.Sampler.degraded sampler = []));
    test_case "best-effort returns the least-violating draw" `Quick (fun () ->
        let scenario = compile unsat in
        let sampler =
          S.Sampler.create ~prune:false ~max_iters:60 ~on_exhausted:`Best_effort
            ~seed:5 scenario
        in
        (* sample_with_stats recovers instead of raising *)
        let scene, stats = S.Sampler.sample_with_stats sampler in
        Alcotest.(check int) "budget spent" 60
          stats.S.Rejection.iterations;
        Alcotest.(check bool) "scene extracted" true
          (List.length scene.C.Scene.objs = 2));
    test_case "structured outcome reports the best draw's violations" `Quick
      (fun () ->
        let e = R.exhaust ~max_iters:60 ~track_best:true ~seed:5 unsat in
        match e.S.Rejection.best with
        | None -> Alcotest.fail "expected a best-effort draw"
        | Some (_, violations) ->
            Alcotest.(check int) "single violated requirement" 1 violations);
  ]

(* --- RNG fault injection ------------------------------------------------- *)

let fault_tests =
  [
    test_case "scripted draws are consumed before the generator" `Quick
      (fun () ->
        let rng = P.Rng.scripted ~floats:[ 0.25; 0.75 ] ~seed:1 () in
        check_float "first" 0.25 (P.Rng.float rng);
        check_float "second" 0.75 (P.Rng.float rng);
        (* exhausted script falls back to the real generator *)
        let u = P.Rng.float rng in
        Alcotest.(check bool) "in range" true (u >= 0. && u < 1.));
    test_case "scripted ints derive from forced floats" `Quick (fun () ->
        let rng = P.Rng.scripted ~floats:[ 0.99; 0.0 ] ~seed:1 () in
        Alcotest.(check int) "high" 9 (P.Rng.int rng 10);
        Alcotest.(check int) "low" 0 (P.Rng.int rng 10));
    test_case "injected fault stops the sampler mid-pipeline" `Quick (fun () ->
        (* allow no draws at all: the first forced draw (the [tag]
           interval) raises *)
        let sampler, _rng =
          R.scripted_sampler ~fail_after:0 ~seed:2
            (base ^ "x = (0, 10)\nObject at 5 @ 5, with tag x\n")
        in
        match S.Rejection.sample sampler with
        | _ -> Alcotest.fail "expected an injected fault"
        | exception P.Rng.Fault _ -> ());
    test_case "scripted sampler pins the sampled value" `Quick (fun () ->
        (* tag = uniform(0, 10); force the draw to 0.3 => tag = 3 *)
        let sampler, _rng =
          R.scripted_sampler
            ~floats:[ 0.3 ]
            ~seed:2
            "import testLib\n\
             ego = Object at 0 @ 0, with tag (0, 10)\n"
        in
        let scene = S.Rejection.sample sampler in
        check_float ~eps:1e-9 "forced draw" 3.
          (C.Scene.prop_float (C.Scene.ego scene) "tag"));
    test_case "rng copy duplicates the fault hook" `Quick (fun () ->
        let a = P.Rng.scripted ~floats:[ 0.5 ] ~seed:3 () in
        let b = P.Rng.copy a in
        check_float "a forced" 0.5 (P.Rng.float a);
        check_float "b forced" 0.5 (P.Rng.float b));
    test_case "repeated script calls append in order" `Quick (fun () ->
        (* the queue is two-list (O(1)-amortised appends); draws must
           still come out in script order across interleaved drawing *)
        let rng = P.Rng.scripted ~floats:[ 0.1 ] ~seed:4 () in
        P.Rng.script rng [ 0.2; 0.3 ];
        check_float "first" 0.1 (P.Rng.float rng);
        P.Rng.script rng [ 0.4 ];
        check_float "second" 0.2 (P.Rng.float rng);
        check_float "third" 0.3 (P.Rng.float rng);
        check_float "fourth" 0.4 (P.Rng.float rng));
    test_case "scripted draws count toward an armed fail_after" `Quick
      (fun () ->
        (* script and fail_after share one hook: queueing draws does not
           postpone the injected fault *)
        let rng = P.Rng.scripted ~fail_after:3 ~seed:4 () in
        P.Rng.script rng [ 0.1; 0.2 ];
        check_float "scripted 1" 0.1 (P.Rng.float rng);
        check_float "scripted 2" 0.2 (P.Rng.float rng);
        let u = P.Rng.float rng in
        Alcotest.(check bool) "third draw is real" true (u >= 0. && u < 1.);
        (match P.Rng.float rng with
        | _ -> Alcotest.fail "expected the injected fault on draw 4"
        | exception P.Rng.Fault _ -> ());
        Alcotest.(check int) "draw counter" 4 (P.Rng.draws rng));
  ]

(* --- distribution parameter validation ----------------------------------- *)

let validation_tests =
  [
    test_case "reversed interval raises Invalid_argument_error" `Quick
      (fun () ->
        expect_error "reversed"
          (function C.Errors.Invalid_argument_error _ -> true | _ -> false)
          (fun () -> ignore (eval_float "x = (5, 1)\n" "x")));
    test_case "negative normal std raises Invalid_argument_error" `Quick
      (fun () ->
        expect_error "negative std"
          (function C.Errors.Invalid_argument_error _ -> true | _ -> false)
          (fun () -> ignore (eval_float "x = Normal(0, -1)\n" "x")));
    test_case "NaN discrete weight raises Invalid_argument_error" `Quick
      (fun () ->
        let v =
          C.Value.random ~ty:C.Value.Tfloat
            (C.Value.R_discrete
               [ (C.Value.Vfloat 1., C.Value.Vfloat Float.nan) ])
        in
        expect_error "nan weight"
          (function C.Errors.Invalid_argument_error _ -> true | _ -> false)
          (fun () -> ignore (force v)));
    test_case "empty choice raises Invalid_argument_error" `Quick (fun () ->
        let v = C.Value.random ~ty:C.Value.Tany (C.Value.R_choice []) in
        expect_error "empty choice"
          (function C.Errors.Invalid_argument_error _ -> true | _ -> false)
          (fun () -> ignore (force v)));
  ]

(* --- chaos determinism ---------------------------------------------------- *)

(* moderate rejection rate, as in test_parallel: determinism must cover
   rejected draws too *)
let chaos_src =
  base ^ "x = (0, 10)\nObject at 5 @ 5, with tag x\nrequire x > 3\n"

let permanent_indices schedule =
  List.filter_map
    (fun f ->
      match f.R.ch_kind with
      | R.Ch_permanent -> Some f.R.ch_index
      | R.Ch_transient _ -> None)
    schedule

let chaos_tests =
  [
    test_case "a chaos schedule is a pure function of seed and size" `Quick
      (fun () ->
        let s1 = R.chaos_schedule ~seed:5 ~n:64 ()
        and s2 = R.chaos_schedule ~seed:5 ~n:64 () in
        Alcotest.(check bool) "identical on rerun" true (s1 = s2);
        Alcotest.(check bool) "nonempty at rate 0.25 over 64" true (s1 <> []);
        let indices = List.map (fun f -> f.R.ch_index) s1 in
        Alcotest.(check (list int)) "indices ascending" indices
          (List.sort_uniq compare indices);
        Alcotest.(check bool) "indices in range" true
          (List.for_all (fun i -> i >= 0 && i < 64) indices);
        let transients =
          List.length s1 - List.length (permanent_indices s1)
        in
        Alcotest.(check bool) "both kinds scheduled" true
          (transients > 0 && permanent_indices s1 <> []);
        Alcotest.(check bool) "a different seed reshuffles the schedule" true
          (R.chaos_schedule ~seed:6 ~n:64 () <> s1));
    test_case "chaos outcomes are fingerprint-identical at jobs 1, 2, 4" `Slow
      (fun () ->
        (* the chaos determinism gate: same master seed + fault
           schedule => byte-identical outcomes, including retry counts
           and quarantine sets, at any worker count.  One compiled
           scenario for all runs (compilation assigns global object
           ids, which the fingerprint's scene text includes). *)
        let scenario = compile chaos_src in
        let n = 12 in
        let schedule = R.chaos_schedule ~seed:5 ~n () in
        Alcotest.(check bool) "schedule disturbs the batch" true
          (schedule <> []);
        let draw jobs =
          S.Parallel.run ~jobs ~seed:5 ~n ~retries:2
            ~prepare_attempt:(R.chaos_prepare schedule) scenario
        in
        let reference = draw 1 in
        let fp = R.batch_fingerprint reference in
        List.iter
          (fun jobs ->
            Alcotest.(check string)
              (Printf.sprintf "jobs %d" jobs)
              fp
              (R.batch_fingerprint (draw jobs)))
          [ 2; 4 ];
        (* retries 2 >= max_clears 2: every transient heals, so the
           quarantine set is exactly the scheduled permanent faults *)
        Alcotest.(check (list int)) "quarantine = scheduled permanents"
          (permanent_indices schedule)
          reference.S.Parallel.quarantined);
    test_case "undisturbed indices match the fault-free batch bit-for-bit"
      `Slow (fun () ->
        (* the --on-error skip acceptance contract: indices the chaos
           schedule never touches draw exactly what a fault-free batch
           draws (healed indices legitimately differ — they drew from a
           retry sub-stream) *)
        let scenario = compile chaos_src in
        let n = 12 in
        let schedule = R.chaos_schedule ~seed:5 ~n () in
        let scheduled = List.map (fun f -> f.R.ch_index) schedule in
        let clean = S.Parallel.run ~jobs:4 ~seed:5 ~n scenario in
        let chaos =
          S.Parallel.run ~jobs:4 ~seed:5 ~n ~retries:2
            ~prepare_attempt:(R.chaos_prepare schedule) scenario
        in
        Array.iteri
          (fun i outcome ->
            if not (List.mem i scheduled) then
              match (outcome, chaos.S.Parallel.outcomes.(i)) with
              | S.Parallel.Scene (a, _), S.Parallel.Scene (b, _) ->
                  Alcotest.(check string)
                    (Printf.sprintf "scene %d" i)
                    (C.Scene.to_string a) (C.Scene.to_string b)
              | _ -> Alcotest.failf "sample %d should have sampled" i)
          clean.S.Parallel.outcomes);
    test_case "chaos_batch reruns agree on supervision accounting" `Quick
      (fun () ->
        (* chaos_batch recompiles per call (shifting object ids), so
           compare the id-independent accounting across reruns *)
        let n = 10 in
        let schedule = R.chaos_schedule ~seed:9 ~n () in
        let draw () =
          R.chaos_batch ~jobs:2 ~retries:2 ~schedule ~seed:9 ~n chaos_src
        in
        let a = draw () and b = draw () in
        Alcotest.(check (list int)) "same quarantine"
          a.S.Parallel.quarantined b.S.Parallel.quarantined;
        Alcotest.(check int) "same retries" a.S.Parallel.retries
          b.S.Parallel.retries;
        Alcotest.(check int) "same total iterations"
          a.S.Parallel.usage.S.Budget.total_iterations
          b.S.Parallel.usage.S.Budget.total_iterations);
  ]

(* --- MCMC budget --------------------------------------------------------- *)

let mcmc_tests =
  [
    test_case "MCMC initialisation respects the deadline" `Quick (fun () ->
        let clock = R.ticking_clock ~step:0.5 () in
        let scenario = compile unsat in
        match
          S.Mcmc.try_create ~max_init_iters:1_000_000 ~timeout:2.0 ~clock
            ~seed:1 scenario
        with
        | Error (S.Budget.Deadline _) -> ()
        | Error (S.Budget.Iteration_limit _) ->
            Alcotest.fail "expected deadline, got iteration limit"
        | Ok _ -> Alcotest.fail "expected exhaustion");
    test_case "MCMC try_create succeeds on satisfiable scenarios" `Quick
      (fun () ->
        let scenario = compile (base ^ "Object at 5 @ 5\n") in
        match S.Mcmc.try_create ~seed:1 scenario with
        | Ok _ -> ()
        | Error _ -> Alcotest.fail "expected success");
  ]

let suites =
  [
    ("robustness.budget", budget_tests);
    ("robustness.diagnosis", diagnosis_tests);
    ("robustness.degradation", degradation_tests);
    ("robustness.faults", fault_tests);
    ("robustness.validation", validation_tests);
    ("robustness.chaos", chaos_tests);
    ("robustness.mcmc", mcmc_tests);
  ]
