(** Tests for the telemetry library ({!Scenic_telemetry}): span
    recording under a fake clock, exporter output, histogram bucket
    maths, merge semantics, the probe interface, and the end-to-end
    integration with the sampler — including that tracing a parallel
    batch does not perturb its bit-identical determinism. *)

open Helpers
module C = Scenic_core
module S = Scenic_sampler
module T = Scenic_telemetry

let test_case = Alcotest.test_case

let qtest name ?(count = 200) arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* A deterministic clock: every reading advances time by [step]
   seconds, so a span (which reads the clock twice) lasts exactly
   [step] seconds on it. *)
let ticking ?(start = 0.) ?(step = 0.001) () =
  let t = ref (start -. step) in
  fun () ->
    t := !t +. step;
    !t

let find_span tr name =
  match List.find_opt (fun s -> s.T.Trace.sp_name = name) (T.Trace.spans tr) with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

exception Boom

(* --- Trace ---------------------------------------------------------------- *)

let trace_tests =
  [
    test_case "nested spans record depth, seq and duration" `Quick (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) ~tid:7 () in
        let v =
          T.Trace.span tr "outer" (fun () ->
              T.Trace.span tr "inner" (fun () -> 42))
        in
        Alcotest.(check int) "span returns f's value" 42 v;
        Alcotest.(check int) "two spans" 2 (T.Trace.span_count tr);
        let outer = find_span tr "outer" and inner = find_span tr "inner" in
        Alcotest.(check int) "outer top-level" 0 outer.T.Trace.sp_depth;
        Alcotest.(check int) "inner nested" 1 inner.T.Trace.sp_depth;
        Alcotest.(check int) "outer started first" 0 outer.T.Trace.sp_seq;
        Alcotest.(check int) "inner started second" 1 inner.T.Trace.sp_seq;
        Alcotest.(check int) "tid stamped" 7 outer.T.Trace.sp_tid;
        (* inner: one clock step; outer: three (its own two plus inner's,
           minus overlap) — exact on the ticking clock *)
        Alcotest.(check (float 1e-6)) "inner dur" 1000. inner.T.Trace.sp_dur_us;
        Alcotest.(check (float 1e-6)) "outer dur" 3000. outer.T.Trace.sp_dur_us);
    test_case "a raising span is still recorded, then re-raised" `Quick
      (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) () in
        (match T.Trace.span tr "doomed" (fun () -> raise Boom) with
        | exception Boom -> ()
        | _ -> Alcotest.fail "expected Boom to propagate");
        let s = find_span tr "doomed" in
        Alcotest.(check (float 1e-6)) "timed anyway" 1000. s.T.Trace.sp_dur_us;
        (* depth restored: the next span is top-level again *)
        T.Trace.span tr "after" (fun () -> ());
        Alcotest.(check int) "depth unwound" 0 (find_span tr "after").T.Trace.sp_depth);
    test_case "attrs are evaluated after the body runs" `Quick (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) () in
        let iters = ref 0 in
        T.Trace.span tr
          ~attrs:(fun () -> [ ("iterations", T.Trace.Int !iters) ])
          "work"
          (fun () -> iters := 17);
        match (find_span tr "work").T.Trace.sp_attrs with
        | [ ("iterations", T.Trace.Int 17) ] -> ()
        | _ -> Alcotest.fail "attr did not observe the body's final state");
    test_case "merge_into keeps the destination's spans first" `Quick
      (fun () ->
        let a = T.Trace.create ~clock:(ticking ()) () in
        let b = T.Trace.create ~clock:(ticking ()) ~tid:3 () in
        T.Trace.span a "a1" (fun () -> ());
        T.Trace.span a "a2" (fun () -> ());
        T.Trace.span b "b1" (fun () -> ());
        T.Trace.merge_into ~into:a b;
        Alcotest.(check (list string))
          "a's spans, then b's"
          [ "a1"; "a2"; "b1" ]
          (List.map (fun s -> s.T.Trace.sp_name) (T.Trace.spans a));
        Alcotest.(check int)
          "source tid survives the merge" 3 (find_span a "b1").T.Trace.sp_tid);
    test_case "total_ms sums same-named spans" `Quick (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) () in
        T.Trace.span tr "phase" (fun () -> ());
        T.Trace.span tr "other" (fun () -> ());
        T.Trace.span tr "phase" (fun () -> ());
        Alcotest.(check (float 1e-9)) "2 x 1ms" 2. (T.Trace.total_ms tr "phase");
        Alcotest.(check (float 1e-9)) "absent name" 0. (T.Trace.total_ms tr "no"));
    test_case "chrome export normalises timestamps to the first span" `Quick
      (fun () ->
        (* a clock that starts far from zero: the exported ts must not *)
        let tr = T.Trace.create ~clock:(ticking ~start:5000. ()) () in
        T.Trace.span tr "first" (fun () -> ());
        let json = T.Trace.chrome_json tr in
        Alcotest.(check bool) "traceEvents" true (contains json "\"traceEvents\"");
        Alcotest.(check bool) "complete events" true (contains json "\"ph\": \"X\"");
        Alcotest.(check bool) "ts rebased to 0" true (contains json "\"ts\": 0");
        Alcotest.(check bool)
          "raw clock epoch leaked" false
          (contains json "5000000000"));
    test_case "jsonl export is one object per span line" `Quick (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) () in
        T.Trace.span tr "a" (fun () -> T.Trace.span tr "b" (fun () -> ()));
        let lines =
          String.split_on_char '\n' (T.Trace.jsonl tr)
          |> List.filter (fun l -> l <> "")
        in
        Alcotest.(check int) "two lines" 2 (List.length lines);
        List.iter
          (fun l ->
            Alcotest.(check bool) "object per line" true
              (String.length l > 1 && l.[0] = '{' && l.[String.length l - 1] = '}'))
          lines);
    test_case "self time subtracts direct children" `Quick (fun () ->
        (* outer spans 3 ticks on the ticking clock; inner spans 1; the
           remaining 2 ticks are outer's self time *)
        let tr = T.Trace.create ~clock:(ticking ()) () in
        T.Trace.span tr "outer" (fun () ->
            T.Trace.span tr "inner" (fun () -> ()));
        let self = T.Trace.self_ms tr in
        Alcotest.(check (option (float 1e-6))) "inner keeps its full time"
          (Some 1.) (List.assoc_opt "inner" self);
        Alcotest.(check (option (float 1e-6))) "outer loses inner's time"
          (Some 2.) (List.assoc_opt "outer" self));
    test_case "folded lines encode the stack path with self time" `Quick
      (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) () in
        T.Trace.span tr "sample batch" (fun () ->
            T.Trace.span tr "rejection;check" (fun () -> ()));
        let folded = T.Trace.folded tr in
        (* frames sanitised: spaces -> _, ';' -> ':' keep the two-column
           format parseable *)
        Alcotest.(check bool) "child path line" true
          (contains folded "sample_batch;rejection:check 1000\n");
        Alcotest.(check bool) "parent self-time line" true
          (contains folded "sample_batch 2000\n"));
    test_case "folded reconstructs stacks across a merged batch" `Quick
      (fun () ->
        (* two per-sample traces on the same tid whose sequence numbers
           both start at 0 — the merge shape Parallel.run produces *)
        let a = T.Trace.create ~clock:(ticking ()) () in
        T.Trace.span a "sample" (fun () -> T.Trace.span a "work" (fun () -> ()));
        let b = T.Trace.create ~clock:(ticking ~start:1. ()) () in
        T.Trace.span b "sample" (fun () -> T.Trace.span b "work" (fun () -> ()));
        T.Trace.merge_into ~into:a b;
        let folded = T.Trace.folded a in
        (* both samples aggregate onto the same two paths, doubled *)
        Alcotest.(check bool) "aggregated child" true
          (contains folded "sample;work 2000\n");
        Alcotest.(check bool) "aggregated parent" true
          (contains folded "sample 4000\n");
        (* and the totals balance: self times sum to wall time *)
        let total =
          List.fold_left (fun acc (_, ms) -> acc +. ms) 0. (T.Trace.self_ms a)
        in
        Alcotest.(check (float 1e-6)) "self times sum to span time" 6. total);
    test_case "save picks the format from the extension" `Quick (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) () in
        T.Trace.span tr "s" (fun () -> ());
        let read path =
          let ic = open_in path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let chrome = Filename.temp_file "trace" ".json" in
        let flat = Filename.temp_file "trace" ".jsonl" in
        let flame = Filename.temp_file "trace" ".folded" in
        let forced = Filename.temp_file "trace" ".json" in
        Fun.protect
          ~finally:(fun () ->
            List.iter Sys.remove [ chrome; flat; flame; forced ])
          (fun () ->
            T.Trace.save tr chrome;
            T.Trace.save tr flat;
            T.Trace.save tr flame;
            T.Trace.save ~format:T.Trace.Flame tr forced;
            Alcotest.(check bool) "chrome wrapper" true
              (contains (read chrome) "\"traceEvents\"");
            Alcotest.(check bool) "jsonl is bare objects" false
              (contains (read flat) "\"traceEvents\"");
            Alcotest.(check string) ".folded infers collapsed stacks"
              "s 1000\n" (read flame);
            Alcotest.(check string) "explicit format beats the extension"
              "s 1000\n" (read forced)));
  ]

(* --- Metrics -------------------------------------------------------------- *)

let in_bucket v =
  let b = T.Metrics.bucket_of v in
  let le = T.Metrics.bucket_le b in
  (* tolerance: [bucket_of] goes through [log2], which can land an
     observation exactly on its power-of-two boundary *)
  v <= le *. (1. +. 1e-9)
  && (b = 0 || v > T.Metrics.bucket_le (b - 1) *. (1. -. 1e-9))

let metrics_tests =
  [
    test_case "counters add and default to zero" `Quick (fun () ->
        let m = T.Metrics.create () in
        T.Metrics.add m "c" 5;
        T.Metrics.incr m "c";
        Alcotest.(check int) "accumulated" 6 (T.Metrics.counter m "c");
        Alcotest.(check int) "unknown counter" 0 (T.Metrics.counter m "nope"));
    test_case "gauges are last-write" `Quick (fun () ->
        let m = T.Metrics.create () in
        Alcotest.(check (option (float 0.))) "unset" None (T.Metrics.gauge m "g");
        T.Metrics.set_gauge m "g" 1.5;
        T.Metrics.set_gauge m "g" 2.5;
        Alcotest.(check (option (float 1e-9))) "last value" (Some 2.5)
          (T.Metrics.gauge m "g"));
    test_case "bucket boundaries are powers of two" `Quick (fun () ->
        Alcotest.(check (float 0.)) "le of the unit bucket" 1.
          (T.Metrics.bucket_le T.Metrics.exp_offset);
        Alcotest.(check int) "1.0 lands on its boundary" T.Metrics.exp_offset
          (T.Metrics.bucket_of 1.0);
        Alcotest.(check int) "just above goes up one"
          (T.Metrics.exp_offset + 1)
          (T.Metrics.bucket_of 1.5);
        Alcotest.(check int) "non-positive underflows" 0 (T.Metrics.bucket_of 0.);
        Alcotest.(check int) "negative underflows" 0 (T.Metrics.bucket_of (-3.));
        Alcotest.(check int) "nan underflows" 0 (T.Metrics.bucket_of Float.nan);
        Alcotest.(check int) "-inf underflows" 0
          (T.Metrics.bucket_of Float.neg_infinity);
        Alcotest.(check int) "huge values overflow into the last bucket"
          (T.Metrics.n_buckets - 1)
          (T.Metrics.bucket_of 1e12);
        Alcotest.(check int) "+inf overflows into the last bucket"
          (T.Metrics.n_buckets - 1)
          (T.Metrics.bucket_of Float.infinity));
    test_case "degenerate observations stay inside the histogram" `Quick
      (fun () ->
        (* the satellite fix: none of these may raise or corrupt counts *)
        let m = T.Metrics.create () in
        List.iter
          (T.Metrics.observe m "h")
          [ 0.; -1.; Float.nan; Float.infinity; Float.neg_infinity; 1. ];
        Alcotest.(check int) "all six counted" 6 (T.Metrics.hist_count m "h");
        let json = T.Metrics.to_json m in
        Alcotest.(check bool) "snapshot still renders" true (contains json "\"h\"");
        Alcotest.(check bool) "no NaN leaks into the JSON" false
          (contains json "nan"));
    qtest "every observation lands in its own bucket"
      QCheck.(float_range 1e-6 1e6)
      in_bucket;
    test_case "observe tracks count, sum and extrema" `Quick (fun () ->
        let m = T.Metrics.create () in
        List.iter (T.Metrics.observe m "h") [ 1.; 4.; 0.5 ];
        Alcotest.(check int) "count" 3 (T.Metrics.hist_count m "h");
        Alcotest.(check (float 1e-9)) "sum" 5.5 (T.Metrics.hist_sum m "h"));
    test_case "merge adds counters and histograms, gauges take src" `Quick
      (fun () ->
        let a = T.Metrics.create () and b = T.Metrics.create () in
        T.Metrics.add a "c" 2;
        T.Metrics.add b "c" 3;
        T.Metrics.add b "only-b" 1;
        T.Metrics.set_gauge a "g" 1.;
        T.Metrics.set_gauge b "g" 9.;
        T.Metrics.observe a "h" 1.;
        T.Metrics.observe b "h" 2.;
        T.Metrics.merge_into ~into:a b;
        Alcotest.(check int) "counter summed" 5 (T.Metrics.counter a "c");
        Alcotest.(check int) "new counter copied" 1 (T.Metrics.counter a "only-b");
        Alcotest.(check (option (float 1e-9))) "gauge last-write" (Some 9.)
          (T.Metrics.gauge a "g");
        Alcotest.(check int) "hist counts summed" 2 (T.Metrics.hist_count a "h");
        Alcotest.(check (float 1e-9)) "hist sums summed" 3.
          (T.Metrics.hist_sum a "h"));
    test_case "quantiles of nothing and of one observation" `Quick (fun () ->
        let m = T.Metrics.create () in
        Alcotest.(check (option (float 0.))) "empty histogram" None
          (T.Metrics.quantile m "h" 0.5);
        T.Metrics.observe m "h" 7.;
        List.iter
          (fun q ->
            Alcotest.(check (option (float 1e-9)))
              (Printf.sprintf "single observation at q=%g" q)
              (Some 7.) (T.Metrics.quantile m "h" q))
          [ 0.; 0.5; 0.99; 1. ]);
    test_case "quantile estimates stay within one log bucket of exact" `Quick
      (fun () ->
        (* a self-contained LCG: fixed seeds, no global RNG state *)
        List.iter
          (fun seed ->
            let s = ref seed in
            let next () =
              s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
              (* skewed positive values spanning several buckets *)
              let u = float_of_int !s /. float_of_int 0x3FFFFFFF in
              0.1 +. (500. *. u *. u)
            in
            let n = 500 in
            let xs = Array.init n (fun _ -> next ()) in
            let m = T.Metrics.create () in
            Array.iter (T.Metrics.observe m "h") xs;
            let sorted = Array.copy xs in
            Array.sort compare sorted;
            List.iter
              (fun q ->
                let exact =
                  let rank =
                    max 1
                      (int_of_float (Float.ceil (q *. float_of_int n)))
                  in
                  sorted.(rank - 1)
                in
                match T.Metrics.quantile m "h" q with
                | None -> Alcotest.fail "quantile of a filled histogram"
                | Some est ->
                    (* one power-of-two bucket of slack, either side *)
                    Alcotest.(check bool)
                      (Printf.sprintf "seed %d q=%g: %g within 2x of %g" seed
                         q est exact)
                      true
                      (est <= (exact *. 2.) +. 1e-9
                      && est >= (exact /. 2.) -. 1e-9);
                    Alcotest.(check bool) "clamped to observed range" true
                      (est >= sorted.(0) -. 1e-9
                      && est <= sorted.(n - 1) +. 1e-9))
              [ 0.5; 0.9; 0.99 ])
          [ 1; 7; 42 ]);
    test_case "merge-then-quantile equals quantile-of-merged" `Quick (fun () ->
        let s = ref 9 in
        let next () =
          s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
          0.01 +. (float_of_int (!s land 1023) /. 8.)
        in
        let xs = Array.init 400 (fun _ -> next ()) in
        let a = T.Metrics.create ()
        and b = T.Metrics.create ()
        and whole = T.Metrics.create () in
        Array.iteri
          (fun i v ->
            T.Metrics.observe (if i mod 2 = 0 then a else b) "h" v;
            T.Metrics.observe whole "h" v)
          xs;
        T.Metrics.merge_into ~into:a b;
        List.iter
          (fun q ->
            Alcotest.(check (option (float 1e-9)))
              (Printf.sprintf "q=%g identical" q)
              (T.Metrics.quantile whole "h" q)
              (T.Metrics.quantile a "h" q))
          [ 0.1; 0.5; 0.9; 0.99; 1. ]);
    test_case "to_json emits the scenic-stats/2 schema with sorted keys" `Quick
      (fun () ->
        let m = T.Metrics.create () in
        T.Metrics.add m "z_ctr" 1;
        T.Metrics.add m "a_ctr" 2;
        T.Metrics.observe m "lat" 3.;
        let json = T.Metrics.to_json m in
        Alcotest.(check bool) "schema" true (contains json "\"scenic-stats/2\"");
        Alcotest.(check bool) "histogram buckets" true
          (contains json "\"buckets\"");
        List.iter
          (fun p -> Alcotest.(check bool) p true (contains json ("\"" ^ p ^ "\"")))
          [ "p50"; "p90"; "p99" ];
        let idx s =
          let rec go i =
            if i + String.length s > String.length json then -1
            else if String.sub json i (String.length s) = s then i
            else go (i + 1)
          in
          go 0
        in
        Alcotest.(check bool) "keys sorted" true
          (idx "\"a_ctr\"" >= 0 && idx "\"a_ctr\"" < idx "\"z_ctr\""));
  ]

(* --- Probe ---------------------------------------------------------------- *)

let probe_tests =
  [
    test_case "noop passes values through and records nothing" `Quick
      (fun () ->
        let p = T.Probe.noop in
        Alcotest.(check bool) "disabled" false p.T.Probe.enabled;
        Alcotest.(check int) "span transparent" 3
          (p.T.Probe.span "x" (fun () -> 3));
        (* none of these may raise *)
        p.T.Probe.add "c" 1;
        p.T.Probe.set_gauge "g" 1.;
        p.T.Probe.observe "h" 1.;
        p.T.Probe.event "e");
    test_case "make with no recorders is the noop" `Quick (fun () ->
        Alcotest.(check bool) "disabled" false
          (T.Probe.make ()).T.Probe.enabled);
    test_case "a recording probe routes to its trace and metrics" `Quick
      (fun () ->
        let tr = T.Trace.create ~clock:(ticking ()) () in
        let m = T.Metrics.create () in
        let p = T.Probe.make ~trace:tr ~metrics:m () in
        Alcotest.(check bool) "enabled" true p.T.Probe.enabled;
        let v = p.T.Probe.span "phase" (fun () -> p.T.Probe.add "n" 2; 11) in
        p.T.Probe.observe "lat" 4.;
        p.T.Probe.set_gauge "g" 0.5;
        Alcotest.(check int) "value through" 11 v;
        Alcotest.(check int) "span recorded" 1 (T.Trace.span_count tr);
        Alcotest.(check int) "counter recorded" 2 (T.Metrics.counter m "n");
        Alcotest.(check int) "histogram recorded" 1 (T.Metrics.hist_count m "lat");
        Alcotest.(check (option (float 1e-9))) "gauge recorded" (Some 0.5)
          (T.Metrics.gauge m "g"));
  ]

(* --- integration with the sampling pipeline ------------------------------- *)

let src =
  "import testLib\n\
   ego = Object at 0 @ 0\n\
   x = (0, 10)\n\
   Object at 5 @ 5, with tag x\n\
   require x > 3\n"

let span_names tr =
  List.sort_uniq compare
    (List.map (fun s -> s.T.Trace.sp_name) (T.Trace.spans tr))

let integration_tests =
  [
    test_case "an instrumented sampler covers every pipeline phase" `Quick
      (fun () ->
        let tr = T.Trace.create () in
        let m = T.Metrics.create () in
        let probe = T.Probe.make ~trace:tr ~metrics:m () in
        let sampler = S.Sampler.of_source ~probe ~seed:3 src in
        for _ = 1 to 5 do
          ignore (S.Sampler.sample sampler)
        done;
        let names = span_names tr in
        List.iter
          (fun n ->
            Alcotest.(check bool) (n ^ " span present") true (List.mem n names))
          [ "compile"; "compile.parse"; "compile.eval"; "prune";
            "rejection.sample" ];
        Alcotest.(check int) "every accept counted" 5
          (T.Metrics.counter m "rejection.accepted");
        Alcotest.(check int) "wall-time histogram per sample" 5
          (T.Metrics.hist_count m "sample.wall_ms");
        Alcotest.(check bool) "iterations observed" true
          (T.Metrics.hist_sum m "rejection.iterations" >= 5.));
    test_case "tracing a parallel batch keeps it bit-identical" `Slow
      (fun () ->
        let scenario = compile src in
        let plain = S.Parallel.run ~jobs:1 ~seed:9 ~n:12 scenario in
        let tr = T.Trace.create () in
        let m = T.Metrics.create () in
        let traced =
          S.Parallel.run ~jobs:4 ~trace:tr ~metrics:m ~seed:9 ~n:12 scenario
        in
        Alcotest.(check (list string))
          "instrumentation never consumes RNG"
          (List.map C.Scene.to_string (S.Parallel.scenes plain))
          (List.map C.Scene.to_string (S.Parallel.scenes traced));
        Alcotest.(check int) "merged accepts count the whole batch" 12
          (T.Metrics.counter m "rejection.accepted");
        (* every sample contributed exactly one index-attributed span *)
        let sample_spans =
          List.filter (fun s -> s.T.Trace.sp_name = "sample") (T.Trace.spans tr)
        in
        Alcotest.(check int) "one sample span per index" 12
          (List.length sample_spans);
        let indices =
          List.filter_map
            (fun s ->
              match s.T.Trace.sp_attrs with
              | [ ("index", T.Trace.Int i); ("attempt", T.Trace.Int 0) ] ->
                  Some i
              | _ -> None)
            sample_spans
        in
        (* not sorted: the per-sample traces are merged in index order
           after the pool joins, so the span order itself is pinned *)
        Alcotest.(check (list int))
          "merged in index order" (List.init 12 Fun.id) indices);
  ]

let suites =
  [
    ("telemetry.trace", trace_tests);
    ("telemetry.metrics", metrics_tests);
    ("telemetry.probe", probe_tests);
    ("telemetry.integration", integration_tests);
  ]
