(** End-to-end tests of the [scenic] executable's contract: exit codes
    (0 ok / 1 error / 2 usage / 3 budget exhausted / 4 nonconformant /
    5 partial batch) and the shape of stdout vs. stderr under
    --jobs/--stats/--trace and the --on-error/--retries/--chaos
    supervision flags.
    Each test runs the real binary in a subprocess; it lives next to
    this test executable in the build tree ([../bin/scenic.exe]), so
    resolve it from [Sys.executable_name] rather than the cwd, which
    differs between [dune runtest] and [dune exec]. *)

let test_case = Alcotest.test_case

let scenic =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "scenic.exe"))

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* run the binary; returns (exit code, stdout, stderr) *)
let run args =
  let out = Filename.temp_file "scenic_cli" ".out" in
  let err = Filename.temp_file "scenic_cli" ".err" in
  let code =
    Sys.command (Filename.quote_command scenic ~stdout:out ~stderr:err args)
  in
  let o = read_all out and e = read_all err in
  Sys.remove out;
  Sys.remove err;
  (code, o, e)

let scenario_file src =
  let path = Filename.temp_file "scenic_cli" ".scenic" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  path

let feasible = "import mars\nego = Rover\nRock\n"
let infeasible = "import mars\nego = Rover\nx = (0, 1)\nrequire x > 2\n"

let check_code what expected (code, _, err) =
  if code <> expected then
    Alcotest.failf "%s: expected exit %d, got %d (stderr: %s)" what expected
      code (String.trim err)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let check_stderr what needle (_, _, err) =
  if not (contains ~needle err) then
    Alcotest.failf "%s: stderr %S does not mention %S" what (String.trim err)
      needle

let suite =
  [
    test_case "--jobs 0 is a usage error before any work" `Quick (fun () ->
        let f = scenario_file feasible in
        let r = run [ "sample"; "--jobs"; "0"; f ] in
        Sys.remove f;
        check_code "--jobs 0" 1 r;
        check_stderr "--jobs 0" "--jobs must be positive" r;
        (* validation must fire before compilation: no other noise *)
        let _, out, _ = r in
        Alcotest.(check string) "stdout empty" "" out);
    test_case "--max-iters 0 is rejected" `Quick (fun () ->
        let f = scenario_file feasible in
        let r = run [ "sample"; "--max-iters"; "0"; f ] in
        Sys.remove f;
        check_code "--max-iters 0" 1 r;
        check_stderr "--max-iters 0" "--max-iters must be positive" r);
    test_case "negative --count is rejected" `Quick (fun () ->
        let f = scenario_file feasible in
        let r = run [ "sample"; "--count=-1"; f ] in
        Sys.remove f;
        check_code "--count=-1" 1 r;
        check_stderr "--count=-1" "--count must be non-negative" r);
    test_case "unknown flag is a cmdliner usage error (exit 124)" `Quick
      (fun () ->
        let f = scenario_file feasible in
        let r = run [ "sample"; "--no-such-flag"; f ] in
        Sys.remove f;
        (* cmdliner reserves 124 for CLI parse errors — distinct from
           our 1/3/4 so scripts can tell a typo from a broken scenario *)
        check_code "--no-such-flag" 124 r);
    test_case "budget exhaustion exits 3 and says so on stderr" `Quick
      (fun () ->
        let f = scenario_file infeasible in
        let r = run [ "sample"; "--max-iters"; "50"; f ] in
        Sys.remove f;
        check_code "exhaustion" 3 r;
        check_stderr "exhaustion" "exhausted" r);
    test_case "--stats adds a scenic-stats/2 snapshot on stderr only" `Quick
      (fun () ->
        let f = scenario_file feasible in
        let plain = run [ "sample"; "--seed"; "7"; "-n"; "2"; f ] in
        let stats = run [ "sample"; "--seed"; "7"; "-n"; "2"; "--stats"; f ] in
        Sys.remove f;
        check_code "plain" 0 plain;
        check_code "--stats" 0 stats;
        check_stderr "--stats" "scenic-stats/2" stats;
        (* the /2 additions: quantile estimates on every histogram and
           the propagation warmup profile *)
        check_stderr "--stats" "\"p50\"" stats;
        check_stderr "--stats" "\"p99\"" stats;
        check_stderr "--stats" "warmup.acceptance" stats;
        let _, out_plain, _ = plain and _, out_stats, _ = stats in
        Alcotest.(check string) "stdout unchanged" out_plain out_stats);
    test_case "--trace writes a trace file" `Quick (fun () ->
        let f = scenario_file feasible in
        let trace = Filename.temp_file "scenic_cli" ".trace.json" in
        let r = run [ "sample"; "--seed"; "7"; "--trace"; trace; f ] in
        Sys.remove f;
        check_code "--trace" 0 r;
        let body = read_all trace in
        Sys.remove trace;
        Alcotest.(check bool) "trace non-empty" true (String.length body > 2);
        Alcotest.(check bool)
          "trace mentions a span" true
          (contains ~needle:"sample" body));
    test_case "--jobs J output is identical for J=1 and J=3" `Quick (fun () ->
        let f = scenario_file feasible in
        let r1 = run [ "sample"; "--seed"; "5"; "-n"; "4"; "--jobs"; "1"; f ] in
        let r3 = run [ "sample"; "--seed"; "5"; "-n"; "4"; "--jobs"; "3"; f ] in
        Sys.remove f;
        check_code "jobs 1" 0 r1;
        check_code "jobs 3" 0 r3;
        let _, o1, _ = r1 and _, o3, _ = r3 in
        Alcotest.(check string) "batch identical" o1 o3);
    test_case "--on-error skip under chaos exits 5 with healthy scenes" `Quick
      (fun () ->
        (* seed 3 over 6 samples schedules 2 permanent faults (indices
           0, 1) and transients that --retries 3 heals: the 4 healthy
           scenes must still stream while the quarantine is reported *)
        let f = scenario_file feasible in
        let r =
          run
            [ "sample"; "--seed"; "3"; "-n"; "6"; "--jobs"; "2"; "--chaos";
              "1"; "--retries"; "3"; "--on-error"; "skip"; f ]
        in
        Sys.remove f;
        check_code "skip" 5 r;
        check_stderr "skip" "quarantined" r;
        check_stderr "skip" "retried" r;
        let _, out, _ = r in
        Alcotest.(check bool) "healthy scenes stream" true
          (contains ~needle:"--- scene" out));
    test_case "--on-error fail under chaos exits 1" `Quick (fun () ->
        let f = scenario_file feasible in
        let r =
          run
            [ "sample"; "--seed"; "3"; "-n"; "6"; "--jobs"; "2"; "--chaos";
              "1"; "--retries"; "3"; "--on-error"; "fail"; f ]
        in
        Sys.remove f;
        check_code "fail" 1 r;
        check_stderr "fail" "permanent fault" r);
    test_case "--on-error best-effort under chaos exits 5" `Quick (fun () ->
        let f = scenario_file feasible in
        let r =
          run
            [ "sample"; "--seed"; "3"; "-n"; "6"; "--jobs"; "2"; "--chaos";
              "1"; "--retries"; "3"; "--on-error"; "best-effort"; f ]
        in
        Sys.remove f;
        check_code "best-effort" 5 r);
    test_case "--on-error skip without faults exits 0 unchanged" `Quick
      (fun () ->
        let f = scenario_file feasible in
        let plain =
          run [ "sample"; "--seed"; "7"; "-n"; "4"; "--jobs"; "2"; f ]
        in
        let skip =
          run
            [ "sample"; "--seed"; "7"; "-n"; "4"; "--jobs"; "2"; "--on-error";
              "skip"; f ]
        in
        Sys.remove f;
        check_code "plain" 0 plain;
        check_code "skip" 0 skip;
        let _, out_plain, _ = plain and _, out_skip, _ = skip in
        Alcotest.(check string) "stdout unchanged" out_plain out_skip);
    test_case "--stats reports fault and retry counters under chaos" `Quick
      (fun () ->
        let f = scenario_file feasible in
        let r =
          run
            [ "sample"; "--seed"; "3"; "-n"; "6"; "--jobs"; "2"; "--chaos";
              "1"; "--retries"; "3"; "--on-error"; "skip"; "--stats"; f ]
        in
        Sys.remove f;
        check_code "--stats" 5 r;
        check_stderr "--stats" "sample.faults" r;
        check_stderr "--stats" "sample.retries" r;
        check_stderr "--stats" "sample.quarantined" r);
    test_case "--chaos and --retries require --jobs" `Quick (fun () ->
        let f = scenario_file feasible in
        let chaos = run [ "sample"; "--chaos"; "0.5"; f ] in
        let retries = run [ "sample"; "--retries"; "1"; f ] in
        let negative =
          run [ "sample"; "--jobs"; "2"; "--retries=-1"; f ]
        in
        let rate = run [ "sample"; "--jobs"; "2"; "--chaos"; "1.5"; f ] in
        Sys.remove f;
        check_code "--chaos without --jobs" 1 chaos;
        check_stderr "--chaos without --jobs" "--chaos requires --jobs" chaos;
        check_code "--retries without --jobs" 1 retries;
        check_stderr "--retries without --jobs" "--retries requires --jobs"
          retries;
        check_code "--retries=-1" 1 negative;
        check_stderr "--retries=-1" "--retries must be non-negative" negative;
        check_code "--chaos 1.5" 1 rate;
        check_stderr "--chaos 1.5" "--chaos must be a rate" rate);
    test_case "invalid --on-error value is a usage error (exit 124)" `Quick
      (fun () ->
        let f = scenario_file feasible in
        let r = run [ "sample"; "--on-error"; "bogus"; f ] in
        Sys.remove f;
        check_code "--on-error bogus" 124 r);
    test_case "omitting --jobs is byte-identical to --jobs 1" `Quick (fun () ->
        (* the former sequential runtime shared one RNG stream across
           the batch, so `scenic sample` disagreed with `--jobs 1` on
           the same seed; both now run the deterministic batch *)
        let f = scenario_file feasible in
        let seq = run [ "sample"; "--seed"; "11"; "-n"; "5"; f ] in
        let j1 = run [ "sample"; "--seed"; "11"; "-n"; "5"; "--jobs"; "1"; f ] in
        let seq_skip =
          run
            [ "sample"; "--seed"; "11"; "-n"; "5"; "--on-error"; "skip"; f ]
        in
        let j1_skip =
          run
            [ "sample"; "--seed"; "11"; "-n"; "5"; "--jobs"; "1"; "--on-error";
              "skip"; f ]
        in
        Sys.remove f;
        check_code "sequential" 0 seq;
        check_code "--jobs 1" 0 j1;
        let _, out_seq, _ = seq and _, out_j1, _ = j1 in
        Alcotest.(check string) "stdout identical" out_j1 out_seq;
        check_code "sequential skip" 0 seq_skip;
        check_code "--jobs 1 skip" 0 j1_skip;
        let _, out_seq_skip, _ = seq_skip and _, out_j1_skip, _ = j1_skip in
        Alcotest.(check string) "stdout identical under --on-error skip"
          out_j1_skip out_seq_skip);
    test_case "--no-propagate samples the same scenes more slowly" `Quick
      (fun () ->
        (* propagation is distribution-preserving but changes the draw
           stream, so only well-formedness is compared here (the KS
           oracle compares the distributions) *)
        let f = scenario_file feasible in
        let off = run [ "sample"; "--seed"; "5"; "-n"; "3"; "--no-propagate"; f ] in
        let on = run [ "sample"; "--seed"; "5"; "-n"; "3"; f ] in
        Sys.remove f;
        check_code "--no-propagate" 0 off;
        check_code "default" 0 on;
        let _, out_off, _ = off in
        Alcotest.(check bool)
          "scenes emitted" true
          (contains ~needle:"--- scene 3" out_off));
    test_case "--stats surfaces the propagation counters" `Quick (fun () ->
        let f = scenario_file feasible in
        let r = run [ "sample"; "--seed"; "5"; "-n"; "2"; "--stats"; f ] in
        Sys.remove f;
        check_code "--stats" 0 r;
        check_stderr "--stats" "propagate.static_true" r;
        check_stderr "--stats" "propagate.retained_frac" r);
    test_case "explain reports the funnel and a dominant requirement" `Quick
      (fun () ->
        let f = scenario_file infeasible in
        let r = run [ "explain"; "--seed"; "7"; "-n"; "5"; "--max-iters"; "60"; f ] in
        Sys.remove f;
        (* a hard scenario is a finding, not an error *)
        check_code "explain" 0 r;
        let _, out, _ = r in
        List.iter
          (fun needle ->
            Alcotest.(check bool) (needle ^ " in report") true
              (contains ~needle out))
          [
            "sampling-health report";
            "requirement funnel";
            "dominant rejecting requirement";
            "(x > 2)";
            "budget:";
          ]);
    test_case "explain --json is byte-identical across --jobs 1/2/4" `Quick
      (fun () ->
        let f = scenario_file feasible in
        let out j =
          let r =
            run
              [ "explain"; "--seed"; "9"; "-n"; "8"; "--json"; "--jobs"; j; f ]
          in
          check_code ("jobs " ^ j) 0 r;
          let _, o, _ = r in
          o
        in
        let o1 = out "1" in
        let o2 = out "2" in
        let o4 = out "4" in
        Sys.remove f;
        Alcotest.(check bool) "schema stamped" true
          (contains ~needle:"\"scenic-explain/1\"" o1);
        Alcotest.(check bool) "no wall-clock fields" false
          (contains ~needle:"_ms" o1);
        Alcotest.(check string) "jobs 1 = jobs 2" o1 o2;
        Alcotest.(check string) "jobs 1 = jobs 4" o1 o4);
    test_case "--explain on sample writes the same JSON report" `Quick
      (fun () ->
        let f = scenario_file feasible in
        let report = Filename.temp_file "scenic_cli" ".explain.json" in
        let r =
          run
            [ "sample"; "--seed"; "9"; "-n"; "3"; "--explain"; report; f ]
        in
        Sys.remove f;
        check_code "--explain" 0 r;
        let body = read_all report in
        Sys.remove report;
        Alcotest.(check bool) "scenic-explain/1 written" true
          (contains ~needle:"\"scenic-explain/1\"" body);
        Alcotest.(check bool) "funnel present" true
          (contains ~needle:"\"funnel\"" body));
    test_case "--trace-format flame writes collapsed stacks" `Quick (fun () ->
        let f = scenario_file feasible in
        let trace = Filename.temp_file "scenic_cli" ".trace.txt" in
        let r =
          run
            [ "sample"; "--seed"; "7"; "--trace"; trace; "--trace-format";
              "flame"; f ]
        in
        Sys.remove f;
        check_code "--trace-format flame" 0 r;
        let body = read_all trace in
        Sys.remove trace;
        (* every line is "path 123": semicolon-joined frames, one space,
           an integer self time — and sampling shows up under the batch *)
        Alcotest.(check bool) "non-empty" true (String.length body > 0);
        Alcotest.(check bool) "no JSON leaked" false (contains ~needle:"{" body);
        String.split_on_char '\n' body
        |> List.filter (fun l -> l <> "")
        |> List.iter (fun line ->
               match String.rindex_opt line ' ' with
               | None -> Alcotest.failf "no value column in %S" line
               | Some i -> (
                   let v =
                     String.sub line (i + 1) (String.length line - i - 1)
                   in
                   match int_of_string_opt v with
                   | Some n when n > 0 -> ()
                   | _ -> Alcotest.failf "bad self-time %S in %S" v line));
        Alcotest.(check bool) "stacks nest under the per-sample span" true
          (contains ~needle:"sample;rejection.sample" body));
    test_case "bench diff exits 0/6/1 for clean/regressed/garbage" `Quick
      (fun () ->
        let record metrics =
          let path = Filename.temp_file "scenic_cli" ".bench.json" in
          let oc = open_out path in
          output_string oc
            (Printf.sprintf
               {|{"schema": "scenic-bench-sampling/5", "scenarios": [%s]}|}
               metrics);
          close_out oc;
          path
        in
        let base =
          record
            {|{"name": "s", "ms_per_scene": 1.0, "mean_iterations": 10.0, "propagation": {"strata": 5, "retained_frac": 0.2}}|}
        in
        let same =
          record
            {|{"name": "s", "ms_per_scene": 1.1, "mean_iterations": 11.0, "propagation": {"strata": 5, "retained_frac": 0.2}}|}
        in
        let worse =
          record
            {|{"name": "s", "ms_per_scene": 9.0, "mean_iterations": 80.0, "propagation": {"strata": 0, "retained_frac": 0.9}}|}
        in
        let garbage = scenario_file "not json at all" in
        let clean = run [ "bench"; "diff"; base; same ] in
        let regressed = run [ "bench"; "diff"; base; worse ] in
        let broken = run [ "bench"; "diff"; garbage; same ] in
        let missing_args = run [ "bench"; "diff"; base ] in
        List.iter Sys.remove [ base; same; worse; garbage ];
        check_code "within noise" 0 clean;
        check_code "regressed" 6 regressed;
        check_stderr "regressed" "regression" regressed;
        check_stderr "regressed" "ms_per_scene" regressed;
        check_stderr "regressed" "strata" regressed;
        check_code "garbage input" 1 broken;
        check_code "single record without --assert" 1 missing_args);
    test_case "bench diff --assert gates on absolute thresholds" `Quick
      (fun () ->
        let record =
          let path = Filename.temp_file "scenic_cli" ".bench.json" in
          let oc = open_out path in
          output_string oc
            {|{"schema": "scenic-bench-sampling/5", "scenarios": [{"name": "s", "ms_per_scene": 1.0, "mean_iterations": 50.0, "propagation": {"strata": 5, "retained_frac": 0.2}}]}|};
          close_out oc;
          path
        in
        let thresholds spec =
          let path = Filename.temp_file "scenic_cli" ".thresholds.json" in
          let oc = open_out path in
          output_string oc
            (Printf.sprintf
               {|{"schema": "scenic-bench-thresholds/1", "scenarios": {"s": %s}}|}
               spec);
          close_out oc;
          path
        in
        let pass = thresholds {|{"max_mean_iterations": 60, "min_strata": 1}|} in
        let fail = thresholds {|{"max_mean_iterations": 40}|} in
        let ok = run [ "bench"; "diff"; record; "--assert"; pass ] in
        let bad = run [ "bench"; "diff"; record; "--assert"; fail ] in
        List.iter Sys.remove [ record; pass; fail ];
        check_code "within thresholds" 0 ok;
        check_code "over threshold" 6 bad;
        check_stderr "over threshold" "mean_iterations" bad);
    test_case "conformance --index replays one fuzz program" `Quick (fun () ->
        let r = run [ "conformance"; "--seed"; "0"; "--index"; "0" ] in
        check_code "replay" 0 r;
        let _, out, _ = r in
        Alcotest.(check bool)
          "prints the program" true
          (contains ~needle:"import confLib" out));
  ]

(* --- scenic serve / scenic client round trips --------------------------- *)

(* Start a real [scenic serve] daemon on a throwaway unix socket, run
   [f addr], then shut it down via the client op and reap the
   process.  Waits for the readiness line's side effect — the socket
   appearing on disk — before handing control to [f]. *)
let with_serve ?(args = []) f =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scenic-cli-serve-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove sock with Sys_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process scenic
      (Array.of_list (([ scenic; "serve"; sock ] @ args)))
      Unix.stdin null null
  in
  Unix.close null;
  Fun.protect
    ~finally:(fun () ->
      (* best-effort: ask politely, then reap (kill if it ignores us) *)
      ignore (run [ "client"; sock; "shutdown" ]);
      let deadline = Unix.gettimeofday () +. 10. in
      let rec reap () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ when Unix.gettimeofday () < deadline ->
            ignore (Unix.select [] [] [] 0.05);
            reap ()
        | 0, _ ->
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid)
        | _ -> ()
      in
      reap ();
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let deadline = Unix.gettimeofday () +. 10. in
      while
        (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline
      do
        ignore (Unix.select [] [] [] 0.02)
      done;
      if not (Sys.file_exists sock) then
        Alcotest.fail "scenic serve never created its socket";
      f sock)

let serve_suite =
  [
    test_case "served batch is byte-identical to scenic sample" `Quick
      (fun () ->
        (* the PR's headline contract: for every --jobs value, a batch
           served over the wire equals `scenic sample --json --seed S
           -n N` byte for byte — cold compile, cache hit, and
           hash-addressed requests alike *)
        let f = scenario_file feasible in
        let oracle jobs =
          let r =
            run
              [
                "sample"; "--json"; "--seed"; "9"; "-n"; "6"; "--jobs";
                string_of_int jobs; f;
              ]
          in
          check_code "scenic sample" 0 r;
          let _, out, _ = r in
          out
        in
        let o1 = oracle 1 and o2 = oracle 2 and o4 = oracle 4 in
        Alcotest.(check string) "CLI stable across --jobs" o1 o2;
        Alcotest.(check string) "CLI stable across --jobs 4" o1 o4;
        with_serve (fun sock ->
            let serve args =
              let r =
                run
                  ([ "client"; sock; "sample"; f; "--seed"; "9"; "-n"; "6" ]
                  @ args)
              in
              check_code "scenic client sample" 0 r;
              r
            in
            let _, cold, cold_err = serve [] in
            Alcotest.(check string) "cold serve = CLI bytes" o1 cold;
            Alcotest.(check bool) "first contact is a miss" true
              (contains ~needle:"cache miss" cold_err);
            let _, hot, hot_err = serve [] in
            Alcotest.(check string) "hot serve = CLI bytes" o1 hot;
            Alcotest.(check bool) "second contact hits" true
              (contains ~needle:"cache hit" hot_err);
            let _, by_hash, _ = serve [ "--by-hash" ] in
            Alcotest.(check string) "hash-addressed = CLI bytes" o1 by_hash);
        Sys.remove f);
    test_case "client surfaces exhausted as exit 3" `Quick (fun () ->
        let f = scenario_file infeasible in
        with_serve (fun sock ->
            let r =
              run
                [
                  "client"; sock; "sample"; f; "--max-iters"; "40"; "-n"; "1";
                ]
            in
            check_code "exhausted over the wire" 3 r;
            check_stderr "names the budget" "iteration limit" r;
            (* ping still answers: exhaustion is a response, not a crash *)
            check_code "ping after exhaustion" 0
              (run [ "client"; sock; "ping" ]));
        Sys.remove f);
    test_case "bench serve --tiny emits a gated record" `Quick (fun () ->
        (* the smoke version of the load generator: the record it
           writes must carry the serve schema and pass the checked-in
           thresholds via `bench diff --assert` (family-scoped) *)
        let out = Filename.temp_file "scenic_cli" ".json" in
        let r = run [ "bench"; "serve"; "--tiny"; "-o"; out ] in
        check_code "bench serve" 0 r;
        let record = read_all out in
        Alcotest.(check bool) "serve schema" true
          (contains ~needle:"scenic-bench-serve/1" record);
        Alcotest.(check bool) "has percentiles" true
          (contains ~needle:"p99_ms" record);
        (* same gates as the checked-in bench/thresholds.json serve
           entries, inline because the test cwd is the build tree *)
        let gates = Filename.temp_file "scenic_cli" ".json" in
        let oc = open_out gates in
        output_string oc
          {|{"schema": "scenic-bench-thresholds/1", "scenarios": {"serve:mars-bottleneck": {"min_cold_over_hit": 10}}}|};
        close_out oc;
        let gate = run [ "bench"; "diff"; out; "--assert"; gates ] in
        Sys.remove out;
        Sys.remove gates;
        check_code "cache hit is >=10x faster than cold compile" 0 gate);
  ]

(* --- scenic falsify ------------------------------------------------------ *)

(* a seeded cut-in that the collision-avoidance controller cannot
   always survive: behavior-driven lead, temporal safety margin *)
let unsafe_cutin =
  "import gtaLib\n\
   behavior cut_in_and_brake(delay):\n\
  \    do drive for delay\n\
  \    do brake\n\
   ego = EgoCar at 1.75 @ -60, facing roadDirection, with speed (11, 14)\n\
   lead = Car ahead of ego by (6, 12), with speed (3, 6), with behavior \
   cut_in_and_brake((0.2, 1.0))\n\
   require always (distance to lead) > 4.5\n"

(* a lead far ahead at matched speed: the margin is never violated *)
let safe_cutin =
  "import gtaLib\n\
   ego = EgoCar at 1.75 @ -60, facing roadDirection, with speed 10\n\
   lead = Car ahead of ego by 30, with speed 10, with requireVisible False\n\
   require always (distance to lead) > 1.0\n"

let falsify_suite =
  [
    test_case "counterexample found is exit 0" `Quick (fun () ->
        let f = scenario_file unsafe_cutin in
        let r =
          run [ "falsify"; f; "--rollouts"; "10"; "--seed"; "5" ]
        in
        Sys.remove f;
        check_code "falsify" 0 r;
        let _, out, _ = r in
        Alcotest.(check bool) "reports violations" true
          (contains ~needle:"violate the property" out);
        Alcotest.(check bool) "reports the first counterexample" true
          (contains ~needle:"first counterexample" out));
    test_case "budget exhausted without counterexample is exit 3" `Quick
      (fun () ->
        let f = scenario_file safe_cutin in
        let r =
          run
            [
              "falsify"; f; "--rollouts"; "5"; "--refine"; "0"; "--seed"; "5";
            ]
        in
        Sys.remove f;
        check_code "safe falsify" 3 r;
        check_stderr "names the outcome" "no counterexample" r);
    test_case "--jobs J output is byte-identical" `Quick (fun () ->
        let f = scenario_file unsafe_cutin in
        let go jobs =
          let r =
            run
              [
                "falsify"; f; "--rollouts"; "8"; "--seed"; "5"; "--jobs";
                string_of_int jobs;
              ]
          in
          check_code (Printf.sprintf "falsify --jobs %d" jobs) 0 r;
          let _, out, _ = r in
          out
        in
        let o1 = go 1 and o2 = go 2 in
        Sys.remove f;
        Alcotest.(check string) "jobs 1 = jobs 2" o1 o2);
    test_case "bad --formula is exit 1" `Quick (fun () ->
        let f = scenario_file unsafe_cutin in
        let r =
          run
            [
              "falsify"; f; "--rollouts"; "2"; "--formula"; "no-such-property";
            ]
        in
        Sys.remove f;
        check_code "bad formula" 1 r;
        check_stderr "names the spec" "no-such-property" r);
    test_case "--stats reports falsify counters" `Quick (fun () ->
        let f = scenario_file unsafe_cutin in
        let r =
          run
            [ "falsify"; f; "--rollouts"; "6"; "--seed"; "5"; "--stats" ]
        in
        Sys.remove f;
        check_code "falsify --stats" 0 r;
        check_stderr "rollout counter" "falsify.rollouts" r;
        check_stderr "tick counter" "falsify.ticks" r);
    test_case "bench falsify --tiny emits a gated record" `Quick (fun () ->
        let out = Filename.temp_file "scenic_cli" ".json" in
        let r = run [ "bench"; "falsify"; "--tiny"; "-o"; out ] in
        check_code "bench falsify" 0 r;
        let record = read_all out in
        Alcotest.(check bool) "falsify schema" true
          (contains ~needle:"scenic-bench-falsify/1" record);
        Alcotest.(check bool) "has throughput" true
          (contains ~needle:"rollouts_per_sec" record);
        Alcotest.(check bool) "has time-to-first" true
          (contains ~needle:"ms_to_first_counterexample" record);
        (* the tiny record must clear the checked-in falsify gates *)
        let gates = Filename.temp_file "scenic_cli" ".json" in
        let oc = open_out gates in
        output_string oc
          {|{"schema": "scenic-bench-thresholds/1", "scenarios": {"falsify:cutin-brake": {"min_counterexamples": 1, "min_rollouts_per_sec": 1}}}|};
        close_out oc;
        let gate = run [ "bench"; "diff"; out; "--assert"; gates ] in
        Sys.remove out;
        Sys.remove gates;
        check_code "falsify gates hold on the tiny run" 0 gate);
  ]

let suites =
  [ ("cli", suite); ("cli.serve", serve_suite); ("cli.falsify", falsify_suite) ]
